(* The differential oracle: clean runs stay clean, injected table bugs
   are caught and shrunk to small reproducers. *)

open Ujam_linalg
open Ujam_ir
open Ujam_oracle

let machine = Ujam_machine.Presets.alpha

(* ---- the three layers on known-good kernels -------------------------- *)

let test_recount_kernels () =
  List.iter
    (fun nest ->
      Alcotest.(check int)
        (Printf.sprintf "%s: tables match materialized recount"
           (Nest.name nest))
        0
        (List.length (Recount.check ~machine nest)))
    [ Ujam_kernels.Kernels.mmjki ~n:12 ();
      Ujam_kernels.Kernels.dmxpy0 ~n:24 ();
      Ujam_kernels.Kernels.jacobi ~n:14 ();
      Ujam_kernels.Kernels.sor ~n:14 () ]

let test_crossmodel_kernels () =
  List.iter
    (fun nest ->
      let unexplained =
        List.filter
          (fun m -> not (Mismatch.is_explained m))
          (Crossmodel.check ~machine nest)
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: no unexplained model divergence" (Nest.name nest))
        0 (List.length unexplained))
    [ Ujam_kernels.Kernels.mmjki ~n:12 ();
      Ujam_kernels.Kernels.dmxpy0 ~n:24 () ]

let test_simcheck_kernel () =
  let o = Simcheck.check ~machine (Ujam_kernels.Kernels.dmxpy0 ~n:24 ()) in
  Alcotest.(check bool) "candidates replayed" true (o.Simcheck.simulated > 1);
  Alcotest.(check int) "no rank inversion" 0 (List.length o.Simcheck.mismatches)

(* ---- clean fuzz run --------------------------------------------------- *)

let test_clean_run () =
  let cfg = { (Fuzz.default_config ~machine ()) with Fuzz.n = 20; seed = 5 } in
  let r = Fuzz.run cfg in
  Alcotest.(check int) "all requested nests checked" 20 r.Fuzz.nests;
  Alcotest.(check int) "no mismatches" 0 r.Fuzz.total_mismatches;
  Alcotest.(check bool) "report ok" true (Fuzz.ok r);
  Alcotest.(check bool) "sim layer exercised" true (r.Fuzz.sim_checked > 0)

let test_deterministic () =
  let cfg =
    { (Fuzz.default_config ~machine ()) with
      Fuzz.n = 10;
      seed = 9;
      layers = [ Fuzz.Recount; Fuzz.Cross_model ] }
  in
  let render r = Format.asprintf "%a" Fuzz.pp r in
  Alcotest.(check string)
    "same config, same report"
    (render (Fuzz.run cfg))
    (render (Fuzz.run cfg))

(* ---- fault injection: a deliberate table bug must be caught and
   shrunk to a small reproducer (the PR's acceptance regression). ------- *)

let test_injected_bug_caught_and_shrunk () =
  (* Pretend V_M over-counts by one on every non-trivial unroll vector:
     the recount layer must flag it on any nest with a real search
     space, and shrinking must keep only enough structure to reproduce
     (a non-trivial space needs two loops; one statement with one read
     suffices). *)
  let perturb u (c : Counts.t) =
    if Vec.is_zero u then c
    else { c with Counts.memory_ops = c.Counts.memory_ops + 1 }
  in
  let cfg =
    { (Fuzz.default_config ~machine ()) with
      Fuzz.n = 12;
      seed = 42;
      layers = [ Fuzz.Recount ];
      shrink = true }
  in
  let r = Fuzz.run ~perturb cfg in
  Alcotest.(check bool) "bug caught" true (r.Fuzz.unexplained > 0);
  Alcotest.(check bool) "report not ok" true (not (Fuzz.ok r));
  let reduced = List.filter_map (fun f -> f.Fuzz.reduced) r.Fuzz.failures in
  Alcotest.(check bool) "reproducers produced" true (reduced <> []);
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: reproducer has at most 2 loops" (Nest.name n))
        true
        (Nest.depth n <= 2);
      Alcotest.(check bool)
        (Printf.sprintf "%s: reproducer has at most 3 refs" (Nest.name n))
        true
        (List.length (Nest.refs n) <= 3);
      (* the reproducer still fails the injected check *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: reproducer still failing" (Nest.name n))
        true
        (Recount.check ~perturb ~machine n
        |> List.exists (fun m -> not (Mismatch.is_explained m))))
    reduced

(* ---- the shrinker on a hand-written predicate ------------------------ *)

let has_coef2 nest =
  List.exists
    (fun ((r : Aref.t), _) ->
      Array.exists
        (fun (s : Affine.t) -> Array.exists (fun c -> abs c = 2) s.Affine.coefs)
        r.Aref.subs)
    (Nest.refs nest)

let test_shrink_minimises () =
  let open Ujam_ir.Build in
  let d = 3 in
  let big =
    nest "big"
      [ loop d "I" ~level:0 ~lo:1 ~hi:12 ();
        loop d "J" ~level:1 ~lo:1 ~hi:12 ();
        loop d "K" ~level:2 ~lo:1 ~hi:12 () ]
      [ aref "A" [ var d 0; var d 1 ]
        <<- (rd "B" [ 2 *$ var d 2 ] +: rd "C" [ var d 0; var d 1 ])
            +: rd "A" [ var d 0; var d 1 ];
        aref "D" [ var d 2 ] <<- rd "D" [ var d 2 ] *: rd "C" [ var d 1; var d 2 ] ]
  in
  Alcotest.(check bool) "predicate holds on the input" true (has_coef2 big);
  let small = Shrink.run ~still_fails:has_coef2 big in
  Alcotest.(check bool) "predicate preserved" true (has_coef2 small);
  Alcotest.(check int) "one loop left" 1 (Nest.depth small);
  Alcotest.(check int) "one statement left" 1 (List.length (Nest.body small));
  Alcotest.(check int) "two refs left" 2 (List.length (Nest.refs small));
  match Nest.trip_counts small with
  | Some trips ->
      Alcotest.(check bool) "trip count shrunk" true
        (Array.for_all (fun t -> t <= 4) trips)
  | None -> Alcotest.fail "constant bounds expected"

let test_shrink_rejects_different_failure () =
  (* A predicate that raises must be treated as "not the same failure":
     the input comes back unchanged. *)
  let nest = Ujam_kernels.Kernels.jacobi ~n:14 () in
  let boom _ = failwith "different failure" in
  let out = Shrink.run ~still_fails:boom nest in
  Alcotest.(check string) "unchanged" (Nest.to_string nest)
    (Nest.to_string out)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_snippet () =
  let open Ujam_ir.Build in
  let d = 2 in
  let n =
    nest "repro"
      [ loop d "I" ~level:0 ~lo:1 ~hi:4 (); loop d "J" ~level:1 ~lo:1 ~hi:4 () ]
      [ aref "A" [ var d 0; var d 1 ] <<- rd "B" [ var d 1; (2 *$ var d 0) +$ 1 ] ]
  in
  let s = Shrink.to_snippet n in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "snippet mentions %s" needle)
        true
        (contains s needle))
    [ "let open Ujam_ir.Build in"; "nest \"repro\""; "rd \"B\"";
      "(2 *$ var d 0) +$ 1"; "~lo:1 ~hi:4" ];
  match Shrink.to_json n with
  | Ujam_engine.Json.Obj fields ->
      Alcotest.(check bool) "json has loops and snippet" true
        (List.mem_assoc "loops" fields && List.mem_assoc "snippet" fields)
  | _ -> Alcotest.fail "object expected"

let suite =
  [ Alcotest.test_case "recount: kernels" `Quick test_recount_kernels;
    Alcotest.test_case "cross-model: kernels" `Quick test_crossmodel_kernels;
    Alcotest.test_case "simcheck: kernel" `Quick test_simcheck_kernel;
    Alcotest.test_case "fuzz: clean run" `Quick test_clean_run;
    Alcotest.test_case "fuzz: deterministic" `Quick test_deterministic;
    Alcotest.test_case "fuzz: injected bug caught+shrunk" `Quick
      test_injected_bug_caught_and_shrunk;
    Alcotest.test_case "shrink: minimises" `Quick test_shrink_minimises;
    Alcotest.test_case "shrink: different failure" `Quick
      test_shrink_rejects_different_failure;
    Alcotest.test_case "shrink: snippet + json" `Quick test_snippet ]
