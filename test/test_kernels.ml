(* The Table 2 suite: catalogue shape and per-kernel structural facts. *)

open Ujam_ir
open Ujam_kernels

let test_catalogue () =
  Alcotest.(check int) "19 loops" 19 (List.length Catalogue.all);
  List.iteri
    (fun i (e : Catalogue.entry) ->
      Alcotest.(check int) "numbered in order" (i + 1) e.Catalogue.num)
    Catalogue.all;
  Alcotest.(check bool) "find" true (Option.is_some (Catalogue.find "mmjki"));
  Alcotest.(check bool) "find fails" true (Option.is_none (Catalogue.find "nope"));
  (* all names unique *)
  let names = List.map (fun (e : Catalogue.entry) -> e.Catalogue.name) Catalogue.all in
  Alcotest.(check int) "unique names" 19 (List.length (List.sort_uniq compare names))

let test_all_buildable_and_wellformed () =
  List.iter
    (fun (e : Catalogue.entry) ->
      let nest = e.Catalogue.build ~n:12 () in
      Alcotest.(check bool)
        (e.Catalogue.name ^ " has flops")
        true
        (Nest.flops_per_iteration nest > 0);
      Alcotest.(check bool)
        (e.Catalogue.name ^ " has refs")
        true
        (List.length (Nest.refs nest) > 0);
      (* every kernel iterates *)
      let count = ref 0 in
      Nest.iter_index_vectors nest (fun _ -> incr count);
      Alcotest.(check bool) (e.Catalogue.name ^ " iterates") true (!count > 0))
    Catalogue.all

let test_depths () =
  let depth name =
    Nest.depth ((Option.get (Catalogue.find name)).Catalogue.build ~n:8 ())
  in
  Alcotest.(check int) "jacobi 2-deep" 2 (depth "jacobi");
  Alcotest.(check int) "mm 3-deep" 3 (depth "mmjik");
  Alcotest.(check int) "btrix 3-deep" 3 (depth "btrix.1");
  Alcotest.(check int) "gmtry 3-deep" 3 (depth "gmtry.3")

let test_stride_one_innermost () =
  (* Fortran discipline: where a kernel has a contiguous-dimension walk,
     the innermost loop performs it.  Check a representative set. *)
  List.iter
    (fun name ->
      let nest = (Option.get (Catalogue.find name)).Catalogue.build ~n:8 () in
      let d = Nest.depth nest in
      let walks_contiguous =
        List.exists
          (fun (r, _) ->
            Aref.rank r >= 1 && Affine.uses_level r.Aref.subs.(0) (d - 1))
          (Nest.refs nest)
      in
      Alcotest.(check bool) (name ^ " walks contiguously") true walks_contiguous)
    [ "jacobi"; "mmjik"; "mmjki"; "dmxpy0"; "vpenta.7"; "sor"; "shal"; "btrix.1" ]

let test_separable_suite () =
  (* all kernels except afold (coupled C(I+J-1)) are separable SIV *)
  List.iter
    (fun (e : Catalogue.entry) ->
      let nest = e.Catalogue.build ~n:8 () in
      let separable =
        List.for_all (fun (r, _) -> Aref.is_separable_siv r) (Nest.refs nest)
      in
      Alcotest.(check bool)
        (e.Catalogue.name ^ " separability")
        (not (String.equal e.Catalogue.name "afold"))
        separable)
    Catalogue.all

let test_collc_strides () =
  (* collc.2 carries coefficient-2 subscripts (coarse-grid transfer) *)
  let nest = Kernels.collc2 ~n:8 () in
  let has_coef2 =
    List.exists
      (fun (r, _) ->
        Array.exists (fun (s : Affine.t) -> Array.exists (fun c -> c = 2) s.Affine.coefs) r.Aref.subs)
      (Nest.refs nest)
  in
  Alcotest.(check bool) "stride-2 subscripts" true has_coef2

let test_reductions_are_reductions () =
  (* dmxpy and afold write a 1-D target under a 2-deep nest *)
  List.iter
    (fun name ->
      let nest = (Option.get (Catalogue.find name)).Catalogue.build ~n:8 () in
      let w = List.filter_map (fun (r, k) -> if k = `Write then Some r else None) (Nest.refs nest) in
      Alcotest.(check int) (name ^ " writes one vector") 1 (List.length w);
      Alcotest.(check int) (name ^ " rank 1 target") 1 (Aref.rank (List.hd w)))
    [ "dmxpy0"; "dmxpy1"; "afold" ]

let test_table2_rendering () =
  let out = Format.asprintf "%a" Catalogue.pp_table () in
  List.iter
    (fun (e : Catalogue.entry) ->
      let contains =
        let n = String.length e.Catalogue.name in
        let rec go i =
          if i + n > String.length out then false
          else if String.sub out i n = e.Catalogue.name then true
          else go (i + 1)
        in
        go 0
      in
      Alcotest.(check bool) (e.Catalogue.name ^ " listed") true contains)
    Catalogue.all

let test_extras () =
  Alcotest.(check int) "nine extra kernels" 9 (List.length Extras.all);
  List.iter
    (fun (name, build) ->
      let nest = build ?n:(Some 8) () in
      Alcotest.(check bool) (name ^ " has refs") true
        (List.length (Nest.refs nest) > 0);
      let count = ref 0 in
      Nest.iter_index_vectors nest (fun _ -> incr count);
      Alcotest.(check bool) (name ^ " iterates") true (!count > 0))
    Extras.all;
  Alcotest.(check int) "conv2d is 4-deep" 4 (Nest.depth (Extras.conv2d ~n:6 ()));
  (* the two matmul orders are interchange images of each other *)
  Alcotest.(check bool) "mmijk permutes to mmikj" true
    (String.equal
       (Nest.to_string (Extras.mmikj ~n:8 ()))
       (Nest.to_string (Interchange.apply (Extras.mmijk ~n:8 ()) [| 0; 2; 1 |])))

let test_extras_optimizable () =
  let machine = Ujam_machine.Presets.alpha in
  List.iter
    (fun (name, build) ->
      let nest = build ?n:(Some 8) () in
      let r = Ujam_core.Driver.optimize ~bound:2 ~machine nest in
      Alcotest.(check bool) (name ^ " optimizes") true
        (r.Ujam_core.Driver.choice.Ujam_core.Search.registers <= 32))
    Extras.all

let suite =
  [ Alcotest.test_case "catalogue" `Quick test_catalogue;
    Alcotest.test_case "buildable and well-formed" `Quick test_all_buildable_and_wellformed;
    Alcotest.test_case "depths" `Quick test_depths;
    Alcotest.test_case "stride-1 innermost" `Quick test_stride_one_innermost;
    Alcotest.test_case "separable SIV suite" `Quick test_separable_suite;
    Alcotest.test_case "collc strides" `Quick test_collc_strides;
    Alcotest.test_case "reductions" `Quick test_reductions_are_reductions;
    Alcotest.test_case "table 2 rendering" `Quick test_table2_rendering;
    Alcotest.test_case "extra kernels" `Quick test_extras;
    Alcotest.test_case "extras optimizable" `Quick test_extras_optimizable ]
