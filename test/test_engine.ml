(* The unified engine: strategy parity against the driver, deterministic
   parallel corpus runs, and per-routine error degradation. *)

open Ujam_linalg
open Ujam_core
open Ujam_machine
open Ujam_engine

let presets = [ ("alpha", Presets.alpha); ("hppa", Presets.hppa) ]

let report_exn = function
  | Ok r -> r
  | Error e -> Alcotest.failf "unexpected engine error: %s" (Error.to_string e)

(* Table-2 parity: for every kernel on both evaluation machines, the
   Ugs_tables strategy through the engine picks the same unroll vector
   and balance as the classic driver path at the same bound. *)
let test_parity () =
  List.iter
    (fun (mname, machine) ->
      List.iter
        (fun (e : Ujam_kernels.Catalogue.entry) ->
          let nest = e.Ujam_kernels.Catalogue.build ~n:12 () in
          let r = Driver.optimize ~bound:4 ~machine nest in
          let outcome =
            Engine.analyze ~bound:4 ~machine
              ~routine:e.Ujam_kernels.Catalogue.name nest
          in
          let rep = report_exn outcome in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: same unroll vector" mname
               e.Ujam_kernels.Catalogue.name)
            true
            (Vec.equal rep.Engine.u r.Driver.choice.Search.u);
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "%s/%s: same balance" mname
               e.Ujam_kernels.Catalogue.name)
            r.Driver.choice.Search.balance rep.Engine.balance_after)
        Ujam_kernels.Catalogue.all)
    presets

(* The no-cache strategy must likewise match the driver's all-hits
   mode. *)
let test_parity_no_cache () =
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build ~n:12 () in
      let machine = Presets.alpha in
      let r = Driver.optimize ~bound:4 ~cache:false ~machine nest in
      let rep =
        report_exn
          (Engine.analyze ~bound:4 ~model:(module Model.No_cache) ~machine
             ~routine:e.Ujam_kernels.Catalogue.name nest)
      in
      Alcotest.(check bool)
        (Printf.sprintf "no-cache/%s: same unroll vector"
           e.Ujam_kernels.Catalogue.name)
        true
        (Vec.equal rep.Engine.u r.Driver.choice.Search.u))
    Ujam_kernels.Catalogue.all

(* Unsupported nests: a non-unit loop step and an out-of-class subscript
   coefficient. *)
let bad_step_nest () =
  let d = 2 in
  let open Ujam_ir.Build in
  let j = var d 0 and i = var d 1 in
  nest "strided"
    [ loop d "J" ~level:0 ~lo:1 ~hi:16 ~step:2 ();
      loop d "I" ~level:1 ~lo:1 ~hi:16 () ]
    [ aref "A" [ i; j ] <<- rd "A" [ i; j ] +: rd "B" [ i ] ]

let bad_coef_nest () =
  let d = 2 in
  let open Ujam_ir.Build in
  let j = var d 0 and i = var d 1 in
  nest "scaled"
    [ loop d "J" ~level:0 ~lo:1 ~hi:16 (); loop d "I" ~level:1 ~lo:1 ~hi:16 () ]
    [ aref "A" [ i; j ] <<- rd "A" [ 3 *$ i; j ] +: rd "B" [ i ] ]

let test_check_supported () =
  let reject name nest =
    match Error.check_supported ~routine:name nest with
    | Ok () -> Alcotest.failf "%s should be rejected" name
    | Error e ->
        Alcotest.(check string) (name ^ " stage") "validate"
          (Error.stage_name e.Error.stage)
  in
  reject "strided" (bad_step_nest ());
  reject "scaled" (bad_coef_nest ());
  (* the doubled multigrid stride stays inside the modelled class *)
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      match
        Error.check_supported ~routine:e.Ujam_kernels.Catalogue.name
          (e.Ujam_kernels.Catalogue.build ~n:12 ())
      with
      | Ok () -> ()
      | Error err ->
          Alcotest.failf "kernel %s wrongly rejected: %s"
            e.Ujam_kernels.Catalogue.name (Error.to_string err))
    Ujam_kernels.Catalogue.all

(* A corpus with injected unsupported routines: the batch completes with
   per-routine error records, never an exception, and 1-domain vs
   2-domain runs render byte-identically. *)
let corpus_with_injected () =
  let good = Ujam_workload.Generator.corpus ~seed:1997 ~count:200 () in
  let bad =
    [ { Ujam_workload.Generator.name = "inject-strided";
        nests = [ bad_step_nest () ] };
      { Ujam_workload.Generator.name = "inject-scaled";
        nests = [ bad_coef_nest () ] } ]
  in
  good @ bad

let test_corpus_degrades () =
  let routines = corpus_with_injected () in
  let report =
    Engine.run_corpus ~bound:3 ~machine:Presets.alpha routines
  in
  Alcotest.(check int) "every routine reported" (List.length routines)
    (Array.length report.Engine.routines);
  Alcotest.(check int) "both injected routines failed" 2 report.Engine.failed;
  Array.iter
    (fun r ->
      if String.length r.Engine.routine >= 6
         && String.equal (String.sub r.Engine.routine 0 6) "inject"
      then
        List.iter
          (function
            | Ok _ -> Alcotest.failf "%s should fail" r.Engine.routine
            | Error e ->
                Alcotest.(check string)
                  (r.Engine.routine ^ " fails validation")
                  "validate"
                  (Error.stage_name e.Error.stage))
          r.Engine.nests)
    report.Engine.routines

let test_corpus_deterministic () =
  let routines = corpus_with_injected () in
  let run domains =
    Engine.to_string
      (Engine.run_corpus ~domains ~bound:3 ~machine:Presets.alpha routines)
  in
  let one = run 1 in
  Alcotest.(check string) "1 domain = 2 domains" one (run 2);
  Alcotest.(check string) "1 domain = 4 domains" one (run 4)

(* The satellite regression: optimize + speedup_estimate must build the
   balance tables exactly once. *)
let test_tables_built_once () =
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let r = Driver.optimize ~bound:4 ~machine:Presets.alpha nest in
  Alcotest.(check int) "one build after optimize" 1
    (Analysis_ctx.table_builds r.Driver.ctx);
  let (_ : float) = Driver.speedup_estimate r in
  let (_ : float) = Driver.speedup_estimate r in
  Alcotest.(check int) "still one build after speedup_estimate" 1
    (Analysis_ctx.table_builds r.Driver.ctx)

(* A context passed into the driver is reused, not rebuilt. *)
let test_ctx_shared_across_calls () =
  let nest = Ujam_kernels.Kernels.dmxpy0 ~n:12 () in
  let ctx = Analysis_ctx.create ~bound:4 ~machine:Presets.alpha nest in
  let r1 = Driver.optimize ~ctx ~machine:Presets.alpha nest in
  let r2 = Driver.optimize ~ctx ~machine:Presets.alpha nest in
  Alcotest.(check int) "one table build for two optimize calls" 1
    (Analysis_ctx.table_builds ctx);
  Alcotest.(check bool) "same choice" true
    (Vec.equal r1.Driver.choice.Search.u r2.Driver.choice.Search.u)

let test_registry () =
  Alcotest.(check (list string)) "registry order"
    [ "ugs"; "dep"; "brute"; "no-cache"; "ugs-l2" ]
    Model.names;
  List.iter
    (fun (alias, expect) ->
      match Model.find alias with
      | Some m -> Alcotest.(check string) alias expect (Model.name m)
      | None -> Alcotest.failf "alias %s not found" alias)
    [ ("ugs-tables", "ugs"); ("dependence", "dep"); ("bruteforce", "brute");
      ("carr-kennedy", "no-cache"); ("UGS", "ugs") ];
  Alcotest.(check bool) "unknown name rejected" true
    (Option.is_none (Model.find "magic"))

(* JSON rendering stays valid on edge values (inf balance from
   zero-flop nests must become null, not a bare inf token). *)
let test_json_non_finite () =
  Alcotest.(check string) "inf -> null" "null"
    (Json.to_string (Json.Float infinity));
  Alcotest.(check string) "nan -> null" "null"
    (Json.to_string (Json.Float nan));
  Alcotest.(check string) "escaping" {|"a\"b\\c"|}
    (Json.to_string (Json.Str {|a"b\c|}))

let suite =
  [ Alcotest.test_case "Table-2 parity on both machines" `Quick test_parity;
    Alcotest.test_case "no-cache parity" `Quick test_parity_no_cache;
    Alcotest.test_case "check_supported" `Quick test_check_supported;
    Alcotest.test_case "corpus degrades per-routine" `Quick test_corpus_degrades;
    Alcotest.test_case "corpus deterministic across domains" `Quick
      test_corpus_deterministic;
    Alcotest.test_case "tables built once" `Quick test_tables_built_once;
    Alcotest.test_case "shared context reused" `Quick test_ctx_shared_across_calls;
    Alcotest.test_case "model registry" `Quick test_registry;
    Alcotest.test_case "json edge values" `Quick test_json_non_finite ]
