(* The paper's table computations (Figures 2, 3, 5) and their exact
   counterparts, validated against literal materialisation of the
   unrolled body — the central correctness statement of this
   reproduction. *)

open Ujam_linalg
open Ujam_ir
open Ujam_ir.Build
open Ujam_core
open Ujam_reuse

let v = Vec.of_list
let innermost d = Subspace.span_dims ~dim:d [ d - 1 ]

(* Ground truth: group counts of the literally unrolled body. *)
let materialized_counts nest u =
  let unrolled = Unroll.unroll_and_jam nest u in
  let d = Nest.depth unrolled in
  let localized = innermost d in
  List.fold_left
    (fun (gt, gs) g ->
      ( gt + Groups.count (Groups.group_temporal ~localized g),
        gs + Groups.count (Groups.group_spatial ~localized g) ))
    (0, 0) (Ugs.of_nest unrolled)

let table_counts nest space u =
  let d = Nest.depth nest in
  let localized = innermost d in
  List.fold_left
    (fun (gt, gs) g ->
      ( gt + Tables.gts_exact space ~localized g u,
        gs + Tables.gss_exact space ~localized g u ))
    (0, 0) (Ugs.of_nest nest)

let incremental_counts nest space u =
  let d = Nest.depth nest in
  let localized = innermost d in
  List.fold_left
    (fun (gt, gs) g ->
      ( gt + Tables.total (Tables.gts_table space ~localized g) u,
        gs + Tables.total (Tables.gss_table space ~localized g) u ))
    (0, 0) (Ugs.of_nest nest)

let test_paper_example () =
  (* Figure 1 of the paper: A(I,J) store and A(I-2,J) read; unrolling the
     I loop merges the copies from offset 2 on. *)
  let d = 2 in
  let i = var d 0 and j = var d 1 in
  let nest =
    nest "fig1"
      [ loop d "I" ~level:0 ~lo:3 ~hi:18 (); loop d "J" ~level:1 ~lo:1 ~hi:16 () ]
      [ aref "A" [ i; j ] <<- rd "A" [ i -$ 2; j ] +: f 1.0 ]
  in
  let space = Unroll_space.make ~bounds:[| 3; 0 |] in
  let a = List.hd (Ugs.of_nest nest) in
  let gts u = Tables.gts_exact space ~localized:(innermost d) a u in
  Alcotest.(check int) "2 GTSs originally" 2 (gts (v [ 0; 0 ]));
  Alcotest.(check int) "u=1: 4 (no merge yet)" 4 (gts (v [ 1; 0 ]));
  Alcotest.(check int) "u=2: first copy merges" 5 (gts (v [ 2; 0 ]));
  Alcotest.(check int) "u=3: still leader+copies" 6 (gts (v [ 3; 0 ]));
  (* and the incremental table agrees *)
  let t = Tables.gts_table space ~localized:(innermost d) a in
  List.iter
    (fun u -> Alcotest.(check int) "incremental" (gts (v u)) (Tables.total t (v u)))
    [ [ 0; 0 ]; [ 1; 0 ]; [ 2; 0 ]; [ 3; 0 ] ]

let test_invariant_direction () =
  (* C(I,J) in a (J,K,I) nest: unrolling K never multiplies the groups. *)
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let d = Nest.depth nest in
  let space = Unroll_space.make ~bounds:[| 3; 3; 0 |] in
  let c =
    List.find (fun (g : Ugs.t) -> String.equal g.Ugs.base "C") (Ugs.of_nest nest)
  in
  let gts u = Tables.gts_exact space ~localized:(innermost d) c u in
  Alcotest.(check int) "K-unrolling collapses" 1 (gts (v [ 0; 3; 0 ]));
  Alcotest.(check int) "J-unrolling multiplies" 4 (gts (v [ 3; 0; 0 ]));
  Alcotest.(check int) "mixed" 4 (gts (v [ 3; 3; 0 ]))

let test_kernel_suite_exact_vs_materialized () =
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build ~n:12 () in
      let d = Nest.depth nest in
      let bounds = Array.make d 2 in
      bounds.(d - 1) <- 0;
      let space = Unroll_space.make ~bounds in
      Unroll_space.iter space (fun u ->
          let gt_m, gs_m = materialized_counts nest u in
          let gt_t, gs_t = table_counts nest space u in
          Alcotest.(check (pair int int))
            (Printf.sprintf "%s at %s" e.Ujam_kernels.Catalogue.name (Vec.to_string u))
            (gt_m, gs_m) (gt_t, gs_t)))
    Ujam_kernels.Catalogue.all

let test_kernel_suite_incremental_vs_exact () =
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build ~n:12 () in
      let d = Nest.depth nest in
      let bounds = Array.make d 3 in
      bounds.(d - 1) <- 0;
      let space = Unroll_space.make ~bounds in
      Unroll_space.iter space (fun u ->
          Alcotest.(check (pair int int))
            (Printf.sprintf "%s at %s" e.Ujam_kernels.Catalogue.name (Vec.to_string u))
            (table_counts nest space u)
            (incremental_counts nest space u)))
    Ujam_kernels.Catalogue.all

let test_rrs_partition () =
  (* vpenta: F(I,J) read+write split at the definition; F(I,J-1) and
     F(I,J-2) are their own streams. *)
  let nest = Ujam_kernels.Kernels.vpenta7 ~n:12 () in
  let d = Nest.depth nest in
  let streams = Rrs.partition ~localized:(innermost d) nest in
  Alcotest.(check int) "six streams" 6 (List.length streams);
  let f_streams =
    List.filter (fun (s : Streams.stream) -> String.equal s.Streams.base "F") streams
  in
  Alcotest.(check int) "F splits into read + def + 2 lagged" 4
    (List.length f_streams)

let test_rrs_paper_figure6 () =
  (* Figure 6: def A(I+1,J), two uses A(I,J); before unrolling the def
     cannot feed the uses in the innermost loop (reuse crosses the I
     loop), after unrolling I by 1 it can. *)
  let d = 2 in
  let i = var d 0 and j = var d 1 in
  let nest =
    nest "fig6"
      [ loop d "I" ~level:0 ~lo:1 ~hi:16 (); loop d "J" ~level:1 ~lo:1 ~hi:16 () ]
      [ aref "B" [ i; j ] <<- rd "A" [ i; j ] +: rd "A" [ i; j ];
        aref "A" [ i +$ 1; j ] <<- rd "B" [ i; j ] *: f 2.0 ]
  in
  let space = Unroll_space.make ~bounds:[| 2; 0 |] in
  let mem = Rrs.memory_table space ~localized:(innermost d) nest in
  (* u=0: one A load (the two uses share it), the A def's store, the B
     def's store (its same-iteration read comes from the register) *)
  Alcotest.(check int) "original memory ops" 3
    (Unroll_space.Table.get mem (v [ 0; 0 ]));
  (* u=1: copy 1's A(I+1,J) uses are fed by copy 0's A(I+1,J) def — the
     Figure 6 merge.  Memory ops: 1 surviving A load + 2 A stores + 2 B
     stores. *)
  Alcotest.(check int) "unrolled memory ops" 5
    (Unroll_space.Table.get mem (v [ 1; 0 ]));
  (* u=2 adds one more def/copy pair but still a single A load *)
  Alcotest.(check int) "u=2 memory ops" 7
    (Unroll_space.Table.get mem (v [ 2; 0 ]))

let test_register_table_spans () =
  (* A(I,J) = A(I,J-2): value must survive two innermost iterations ->
     3 registers for the chain, 1 for the def stream. *)
  let d = 2 in
  let i = var d 0 and j = var d 1 in
  let nest =
    nest "lag2"
      [ loop d "I" ~level:0 ~lo:1 ~hi:8 (); loop d "J" ~level:1 ~lo:3 ~hi:18 () ]
      [ aref "A" [ i; j ] <<- rd "A" [ i; j -$ 2 ] +: f 1.0 ]
  in
  let space = Unroll_space.make ~bounds:[| 1; 0 |] in
  let reg = Rrs.register_table space ~localized:(innermost d) nest in
  Alcotest.(check int) "lag-2 chain needs 3 registers" 3
    (Unroll_space.Table.get reg (v [ 0; 0 ]));
  Alcotest.(check int) "independent copies double it" 6
    (Unroll_space.Table.get reg (v [ 1; 0 ]))

let prop_streams_match_materialization =
  QCheck2.Test.make ~name:"tables: streams == materialised body (random SIV nests)"
    ~count:60
    ~print:(fun (nest, space) ->
      Printf.sprintf "%s\nbounds=%s" (Gen.nest_print nest)
        (String.concat ","
           (Array.to_list (Array.map string_of_int (Unroll_space.bounds space)))))
    (Gen.nest_and_space_gen ())
    (fun (nest, space) ->
      let d = Nest.depth nest in
      let localized = innermost d in
      let ok = ref true in
      Unroll_space.iter space (fun u ->
          let m =
            Streams.summarize
              (Streams.of_body ~localized (Unroll.unroll_and_jam nest u))
          in
          let t =
            Streams.summarize (Streams.of_nest_unrolled space ~localized nest u)
          in
          if m <> t then ok := false);
      !ok)

let prop_groups_match_materialization =
  QCheck2.Test.make ~name:"tables: exact group counts == materialised body"
    ~count:60
    ~print:(fun (nest, space) ->
      Printf.sprintf "%s\nbounds=%s" (Gen.nest_print nest)
        (String.concat ","
           (Array.to_list (Array.map string_of_int (Unroll_space.bounds space)))))
    (Gen.nest_and_space_gen ())
    (fun (nest, space) ->
      let ok = ref true in
      Unroll_space.iter space (fun u ->
          if materialized_counts nest u <> table_counts nest space u then ok := false);
      !ok)

let prop_incremental_matches_exact =
  QCheck2.Test.make ~name:"tables: incremental tables == exact counts" ~count:60
    ~print:(fun (nest, space) ->
      Printf.sprintf "%s\nbounds=%s" (Gen.nest_print nest)
        (String.concat ","
           (Array.to_list (Array.map string_of_int (Unroll_space.bounds space)))))
    (Gen.nest_and_space_gen ())
    (fun (nest, space) ->
      let d = Nest.depth nest in
      let localized = innermost d in
      (* the incremental algorithm shares the paper's domain restriction:
         merge keys must be orientable (Sec. 5) *)
      QCheck2.assume
        (List.for_all
           (fun g -> Tables.gts_applicable space ~localized g)
           (Ugs.of_nest nest));
      let ok = ref true in
      Unroll_space.iter space (fun u ->
          if incremental_counts nest space u <> table_counts nest space u then
            ok := false);
      !ok)

let prop_incremental_rrs_matches_streams =
  QCheck2.Test.make ~name:"tables: Figure-5 RRS table == stream count" ~count:60
    ~print:(fun (nest, space) ->
      Printf.sprintf "%s\nbounds=%s" (Gen.nest_print nest)
        (String.concat ","
           (Array.to_list (Array.map string_of_int (Unroll_space.bounds space)))))
    (Gen.nest_and_space_gen ())
    (fun (nest, space) ->
      let d = Nest.depth nest in
      let localized = innermost d in
      let exact = Rrs.stream_table space ~localized nest in
      let inc = Rrs.incremental_rrs_table space ~localized nest in
      let ok = ref true in
      Unroll_space.iter space (fun u ->
          if Unroll_space.Table.get exact u <> Unroll_space.Table.get inc u then
            ok := false);
      !ok)

let prop_summary_fn_matches_streams =
  QCheck2.Test.make
    ~name:"tables: summary closure == summarised stream construction" ~count:60
    ~print:(fun (nest, space) ->
      Printf.sprintf "%s\nbounds=%s" (Gen.nest_print nest)
        (String.concat ","
           (Array.to_list (Array.map string_of_int (Unroll_space.bounds space)))))
    (Gen.nest_and_space_gen ())
    (fun (nest, space) ->
      let d = Nest.depth nest in
      let localized = innermost d in
      let ok = ref true in
      List.iter
        (fun g ->
          let fast = Streams.unrolled_summary_fn space ~localized g in
          let slow = Streams.unrolled_fn space ~localized g in
          Unroll_space.iter space (fun u ->
              if fast u <> Streams.summarize (slow u) then ok := false))
        (Ugs.of_nest nest);
      !ok)

let suite =
  [ Alcotest.test_case "paper Figure 1 example" `Quick test_paper_example;
    Alcotest.test_case "kernel directions collapse" `Quick test_invariant_direction;
    Alcotest.test_case "suite: exact vs materialised" `Slow
      test_kernel_suite_exact_vs_materialized;
    Alcotest.test_case "suite: incremental vs exact" `Slow
      test_kernel_suite_incremental_vs_exact;
    Alcotest.test_case "RRS partition" `Quick test_rrs_partition;
    Alcotest.test_case "paper Figure 6 example" `Quick test_rrs_paper_figure6;
    Alcotest.test_case "register spans" `Quick test_register_table_spans;
    Gen.to_alcotest prop_streams_match_materialization;
    Gen.to_alcotest prop_summary_fn_matches_streams;
    Gen.to_alcotest prop_groups_match_materialization;
    Gen.to_alcotest prop_incremental_matches_exact;
    Gen.to_alcotest prop_incremental_rrs_matches_streams ]
