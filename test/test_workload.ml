(* Synthetic corpus generator and Table 1 measurement. *)

open Ujam_workload

let test_determinism () =
  let a = Generator.corpus ~seed:42 ~count:25 () in
  let b = Generator.corpus ~seed:42 ~count:25 () in
  List.iter2
    (fun (ra : Generator.routine) (rb : Generator.routine) ->
      Alcotest.(check string) "names equal" ra.Generator.name rb.Generator.name;
      List.iter2
        (fun na nb ->
          Alcotest.(check string) "nests identical"
            (Ujam_ir.Nest.to_string na) (Ujam_ir.Nest.to_string nb))
        ra.Generator.nests rb.Generator.nests)
    a b;
  let c = Generator.corpus ~seed:43 ~count:25 () in
  Alcotest.(check bool) "different seed differs" true
    (List.exists2
       (fun (ra : Generator.routine) (rb : Generator.routine) ->
         not
           (List.equal
              (fun x y -> String.equal (Ujam_ir.Nest.to_string x) (Ujam_ir.Nest.to_string y))
              ra.Generator.nests rb.Generator.nests))
       a c)

let test_wellformed () =
  List.iter
    (fun (r : Generator.routine) ->
      List.iter
        (fun nest ->
          Alcotest.(check bool) "has statements" true
            (List.length (Ujam_ir.Nest.body nest) > 0);
          Alcotest.(check bool) "has refs" true
            (List.length (Ujam_ir.Nest.refs nest) > 0))
        r.Generator.nests)
    (Generator.corpus ~seed:7 ~count:100 ())

let test_measure_small () =
  let report = Corpus.measure (Generator.corpus ~seed:1997 ~count:300 ()) in
  Alcotest.(check int) "all routines counted" 300 report.Corpus.routines;
  Alcotest.(check bool) "a sizeable share has no dependences" true
    (report.Corpus.with_deps < 300 && report.Corpus.with_deps > 100);
  Alcotest.(check bool) "input dependences dominate the mass" true
    (float_of_int report.Corpus.total_input
    > 0.6 *. float_of_int report.Corpus.total_deps);
  Alcotest.(check bool) "mean share in the paper's regime" true
    (report.Corpus.mean_input_fraction > 0.4
    && report.Corpus.mean_input_fraction < 0.8);
  (* bucket counts account for every routine with dependences *)
  Alcotest.(check int) "buckets partition"
    report.Corpus.with_deps
    (List.fold_left (fun a (_, n) -> a + n) 0 report.Corpus.buckets)

let test_buckets_cover_reals () =
  (* the bucket predicates partition [0,1] *)
  List.iter
    (fun p ->
      let hits =
        List.filter (fun (_, pred) -> pred p) Corpus.table1_buckets
      in
      Alcotest.(check int)
        (Printf.sprintf "p=%.3f in exactly one bucket" p)
        1 (List.length hits))
    [ 0.0; 0.001; 0.2; 1.0 /. 3.0; 0.35; 0.4; 0.5; 0.63; 0.75; 0.85; 0.9; 0.95; 1.0 ]

let test_archetypes_present () =
  let report = Corpus.measure (Generator.corpus ~seed:1997 ~count:500 ()) in
  let bucket name =
    List.assoc name report.Corpus.buckets
  in
  Alcotest.(check bool) "0%% bucket populated" true (bucket "0%" > 0);
  Alcotest.(check bool) "90-100%% bucket populated" true (bucket "90%-100%" > 0);
  Alcotest.(check bool) "low buckets populated" true (bucket "1%-32%" > 0)

let test_only_supported () =
  (* The generator's contract: every emitted nest is inside the class
     the analysis models, so downstream fuzzing never trips on an
     unsupported shape. *)
  let stats = Generator.stats () in
  let corpus = Generator.corpus ~seed:23 ~stats ~count:200 () in
  let emitted = ref 0 in
  List.iter
    (fun (r : Generator.routine) ->
      List.iter
        (fun nest ->
          incr emitted;
          match Ujam_ir.Supported.check nest with
          | Ok () -> ()
          | Error msg ->
              Alcotest.failf "%s emitted unsupported nest: %s"
                r.Generator.name msg)
        r.Generator.nests)
    corpus;
  (* counters are consistent: every draw was either emitted or rejected *)
  Alcotest.(check int) "generated = emitted + rejected"
    stats.Generator.generated
    (!emitted + stats.Generator.rejected);
  let rate = Generator.rejection_rate stats in
  Alcotest.(check bool) "rate in [0,1]" true (rate >= 0.0 && rate <= 1.0)

let test_rejection_rate_empty () =
  Alcotest.(check (float 0.0)) "no draws, zero rate" 0.0
    (Generator.rejection_rate (Generator.stats ()))

let suite =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "well-formed" `Quick test_wellformed;
    Alcotest.test_case "measurement" `Quick test_measure_small;
    Alcotest.test_case "bucket partition" `Quick test_buckets_cover_reals;
    Alcotest.test_case "archetypes present" `Quick test_archetypes_present;
    Alcotest.test_case "only supported nests" `Quick test_only_supported;
    Alcotest.test_case "rejection rate, no draws" `Quick
      test_rejection_rate_empty ]
