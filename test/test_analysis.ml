(* The static analyzer: lint rules fire where they should and stay
   silent on the supported corpus; the monotonicity guard catches an
   injected register-table bug and degrades the pruned search to the
   exhaustive path instead of returning a wrong vector; the
   transformation verifiers accept the real transforms and reject
   tampered ones; parse failures surface as located UJ000 errors. *)

open Ujam_linalg
open Ujam_ir
open Ujam_ir.Build
open Ujam_analysis

let alpha = Ujam_machine.Presets.alpha

let catalogue name =
  match Ujam_kernels.Catalogue.find name with
  | Some e -> e.Ujam_kernels.Catalogue.build ()
  | None -> Alcotest.failf "catalogue kernel %s not found" name

let rules diags = List.map (fun d -> d.Diagnostic.rule) diags
let has rule diags = List.mem rule (rules diags)

let errors diags =
  let e, _, _ = Diagnostic.count diags in
  e

(* A depth-2 nest every transform in the suite handles: constant
   bounds with trips divisible by the unroll factors used below. *)
let jv = var 2 0
let iv = var 2 1

let base =
  nest "verisrc"
    [ loop 2 "J" ~level:0 ~lo:1 ~hi:8 (); loop 2 "I" ~level:1 ~lo:1 ~hi:8 () ]
    [ aref "A" [ iv; jv ] <<- (rd "A" [ iv; jv ] +: (rd "B" [ jv ] *: rd "C" [ iv ])) ]

let step2 =
  nest "step2"
    [ loop 2 "J" ~level:0 ~lo:1 ~hi:8 ~step:2 ();
      loop 2 "I" ~level:1 ~lo:1 ~hi:8 () ]
    [ aref "A" [ iv; jv ] <<- (rd "A" [ iv; jv ] +: f 1.0) ]

(* --- lint rules ------------------------------------------------- *)

let test_corpus_clean () =
  List.iter
    (fun machine ->
      List.iter
        (fun e ->
          let nest = e.Ujam_kernels.Catalogue.build () in
          let diags = Lint.run ~machine nest in
          let errs = List.filter Diagnostic.is_error diags in
          Alcotest.(check int)
            (Printf.sprintf "%s on %s: zero Error diagnostics"
               e.Ujam_kernels.Catalogue.name
               machine.Ujam_machine.Machine.name)
            0 (List.length errs))
        Ujam_kernels.Catalogue.all)
    [ alpha; Ujam_machine.Presets.hppa ]

let test_rule_step () =
  let diags = Lint.run ~machine:alpha step2 in
  Alcotest.(check bool) "UJ004 fires on a step-2 loop" true (has "UJ004" diags);
  Alcotest.(check bool) "and it is an Error" true (errors diags > 0)

let test_rule_coefficient () =
  let nest =
    nest "bigcoef"
      [ loop 2 "J" ~level:0 ~lo:1 ~hi:8 (); loop 2 "I" ~level:1 ~lo:1 ~hi:8 () ]
      [ aref "Y" [ 3 *$ iv ] <<- (rd "Y" [ 3 *$ iv ] +: rd "X" [ jv ]) ]
  in
  let diags = Lint.run ~machine:alpha nest in
  Alcotest.(check bool) "UJ005 fires on coefficient 3" true (has "UJ005" diags);
  let d = List.find (fun d -> d.Diagnostic.rule = "UJ005") diags in
  Alcotest.(check bool) "located at a statement" true
    (d.Diagnostic.loc.Loc.stmt <> None);
  Alcotest.(check bool) "located at a site" true
    (d.Diagnostic.loc.Loc.site <> None)

let test_rule_trip () =
  let nest =
    nest "empty-trip"
      [ loop 2 "J" ~level:0 ~lo:5 ~hi:1 (); loop 2 "I" ~level:1 ~lo:1 ~hi:8 () ]
      [ aref "A" [ iv; jv ] <<- (rd "A" [ iv; jv ] +: f 1.0) ]
  in
  let diags = Lint.run ~machine:alpha nest in
  Alcotest.(check bool) "UJ002 fires on lo=5, hi=1" true (has "UJ002" diags)

let test_rule_coupled () =
  let nest =
    nest "coupled"
      [ loop 2 "J" ~level:0 ~lo:1 ~hi:8 (); loop 2 "I" ~level:1 ~lo:1 ~hi:8 () ]
      [ aref "A" [ jv ++$ iv ] <<- (rd "A" [ jv ++$ iv ] +: f 1.0) ]
  in
  let diags = Lint.run ~machine:alpha nest in
  Alcotest.(check bool) "UJ006 fires on A(J+I)" true (has "UJ006" diags);
  Alcotest.(check int) "coupling is a warning, not an error" 0 (errors diags)

let test_rule_subscript_depth () =
  let shallow = var 1 0 in
  let bad = Nest.with_body base [ aref "A" [ shallow ] <<- rd "A" [ shallow ] ] in
  let diags = Lint.run ~machine:alpha bad in
  Alcotest.(check bool) "UJ003 fires on depth-1 subscripts in a depth-2 nest"
    true (has "UJ003" diags)

let test_rules_filter () =
  let diags = Lint.run ~rules:[ "UJ004" ] ~machine:alpha step2 in
  Alcotest.(check (list string)) "--rules restricts output" [ "UJ004" ]
    (rules diags)

(* --- the monotonicity guard ------------------------------------- *)

let dmxpy_ctx () =
  Ujam_core.Analysis_ctx.create ~bound:8 ~machine:alpha (catalogue "dmxpy0")

let test_monotone_certifies () =
  let bal = Ujam_core.Analysis_ctx.balance (dmxpy_ctx ()) in
  Alcotest.(check bool) "the sweep-built register table is monotone" true
    (Monotone.check_registers bal = None);
  let choice, violation = Monotone.search ~cache:true bal in
  Alcotest.(check bool) "no violation on the clean table" true
    (violation = None);
  let pruned = Ujam_core.Search.best ~prune:true ~cache:true bal in
  Alcotest.(check bool) "guarded search = pruned search" true
    (Vec.equal choice.Ujam_core.Search.u pruned.Ujam_core.Search.u)

(* Inject R(1,0) = 10000: the pruned search sees the register file
   exceeded at (1,0) and (unsoundly, on this broken table) discards the
   whole upward box, returning the zero vector.  The guard must detect
   the violation at (2,0) and fall back to the exhaustive scan, which
   still finds the true optimum. *)
let test_monotone_catches_injected_bug () =
  let bal = Ujam_core.Analysis_ctx.balance (dmxpy_ctx ()) in
  let poison = Vec.of_list [ 1; 0 ] in
  let bal' =
    Ujam_core.Balance.map_registers bal (fun u r ->
        if Vec.equal u poison then 10_000 else r)
  in
  (match Monotone.check_registers bal' with
  | None -> Alcotest.fail "injected violation not detected"
  | Some v ->
      Alcotest.(check bool) "violation located just past the poisoned cell"
        true
        (Vec.equal v.Monotone.u (Vec.of_list [ 2; 0 ]));
      Alcotest.(check int) "along the poisoned axis" 0 v.Monotone.axis;
      Alcotest.(check int) "predecessor value is the injected one" 10_000
        v.Monotone.below;
      let d = Monotone.diagnostic ~nest:"dmxpy0" v in
      Alcotest.(check string) "reported as UJ010" "UJ010" d.Diagnostic.rule;
      Alcotest.(check bool) "as a warning, not an error" false
        (Diagnostic.is_error d));
  let reference = Ujam_core.Search.best ~prune:false ~cache:true bal in
  let pruned = Ujam_core.Search.best ~prune:true ~cache:true bal' in
  let exhaustive = Ujam_core.Search.best ~prune:false ~cache:true bal' in
  Alcotest.(check bool) "unguarded pruning returns the wrong (zero) vector"
    true
    (Vec.is_zero pruned.Ujam_core.Search.u);
  Alcotest.(check bool) "the exhaustive scan is unaffected by the poison" true
    (Vec.equal exhaustive.Ujam_core.Search.u reference.Ujam_core.Search.u);
  Alcotest.(check bool) "which is a real unroll, not the zero vector" false
    (Vec.is_zero reference.Ujam_core.Search.u);
  let guarded, violation = Monotone.search ~cache:true bal' in
  Alcotest.(check bool) "guard reports the violation" true (violation <> None);
  Alcotest.(check bool) "guarded search returns the exhaustive answer" true
    (Vec.equal guarded.Ujam_core.Search.u exhaustive.Ujam_core.Search.u)

(* --- transformation verifiers ----------------------------------- *)

let test_verify_unroll () =
  let u = Vec.of_list [ 3; 0 ] in
  let t = Unroll.unroll_and_jam base u in
  Alcotest.(check int) "unroll-and-jam by (3,0) verifies" 0
    (List.length (Verify.unroll ~original:base ~u t));
  (* shift every subscript of the transformed body: same shape, wrong
     access multiset *)
  let shifted =
    Nest.with_body t (List.map (fun s -> Stmt.shift s [| 1; 0 |]) (Nest.body t))
  in
  let diags = Verify.unroll ~original:base ~u shifted in
  Alcotest.(check bool) "shifted body rejected as UJ020" true
    (has "UJ020" diags);
  Alcotest.(check bool) "as an Error" true (errors diags > 0);
  (* reset the unrolled loop's step back to the original: right body,
     wrong iteration spacing *)
  let loops = Array.map (fun l -> Loop.with_step l 1) (Nest.loops t) in
  let bad_step = Nest.with_loops t loops in
  Alcotest.(check bool) "wrong step rejected as UJ020" true
    (has "UJ020" (Verify.unroll ~original:base ~u bad_step))

let test_verify_interchange () =
  let perm = [| 1; 0 |] in
  let t = Interchange.apply base perm in
  Alcotest.(check int) "interchange (1 0) verifies" 0
    (List.length (Verify.interchange ~original:base ~perm t));
  let diags = Verify.interchange ~original:base ~perm:[| 0; 1 |] t in
  Alcotest.(check bool) "wrong permutation rejected as UJ021" true
    (has "UJ021" diags)

let test_verify_tile () =
  let t = Tile.tile base ~levels:[ 0 ] ~sizes:[ 4 ] in
  Alcotest.(check int) "tiling level 0 by 4 verifies" 0
    (List.length (Verify.tile ~original:base ~levels:[ 0 ] ~sizes:[ 4 ] t));
  let diags = Verify.tile ~original:base ~levels:[ 0 ] ~sizes:[ 2 ] t in
  Alcotest.(check bool) "wrong tile size rejected as UJ022" true
    (has "UJ022" diags)

(* --- parse errors and the engine fence -------------------------- *)

let test_parse_located () =
  match Parse.nest ~name:"bad" "DO I = 1 8\n  A(I) = 1.0\nENDDO" with
  | Ok _ -> Alcotest.fail "malformed DO header parsed"
  | Error e ->
      Alcotest.(check (option int)) "error located on line 1" (Some 1)
        e.Parse.loc.Loc.line;
      let d = Lint.of_parse_error e in
      Alcotest.(check string) "surfaced as UJ000" "UJ000" d.Diagnostic.rule;
      Alcotest.(check bool) "as an Error" true (Diagnostic.is_error d);
      Alcotest.(check (option int)) "location carried through" (Some 1)
        d.Diagnostic.loc.Loc.line

let test_engine_fence_attaches_diagnostics () =
  match Ujam_engine.Error.check_supported ~routine:"step2" step2 with
  | Ok () -> Alcotest.fail "step-2 nest accepted by the fence"
  | Error err ->
      Alcotest.(check bool) "fence failure carries located diagnostics" true
        (err.Ujam_engine.Error.diagnostics <> []);
      Alcotest.(check bool) "including UJ004" true
        (has "UJ004" err.Ujam_engine.Error.diagnostics)

(* --- explain verdicts ------------------------------------------- *)

let test_explain_models () =
  let e = Explain.run ~machine:alpha (catalogue "dmxpy0") in
  Alcotest.(check string) "dmxpy0 goes down the ugs path" "ugs"
    (Explain.model_of e);
  Alcotest.(check bool) "with a non-trivial chosen vector" true
    (match Explain.choice_u e with Some u -> not (Vec.is_zero u) | None -> false);
  let e = Explain.run ~machine:alpha step2 in
  Alcotest.(check string) "step-2 nest is unsupported" "unsupported"
    (Explain.model_of e);
  let one =
    nest "one"
      [ loop 1 "I" ~level:0 ~lo:1 ~hi:8 () ]
      [ aref "A" [ var 1 0 ] <<- (rd "A" [ var 1 0 ] +: f 1.0) ]
  in
  let e = Explain.run ~machine:alpha one in
  Alcotest.(check string) "a depth-1 nest is trivial" "trivial"
    (Explain.model_of e)

let suite =
  [ Alcotest.test_case "corpus is lint-clean" `Quick test_corpus_clean;
    Alcotest.test_case "UJ004 non-unit step" `Quick test_rule_step;
    Alcotest.test_case "UJ005 big coefficient" `Quick test_rule_coefficient;
    Alcotest.test_case "UJ002 non-positive trip" `Quick test_rule_trip;
    Alcotest.test_case "UJ006 coupled subscript" `Quick test_rule_coupled;
    Alcotest.test_case "UJ003 subscript depth" `Quick test_rule_subscript_depth;
    Alcotest.test_case "rule filter" `Quick test_rules_filter;
    Alcotest.test_case "monotone: clean table certifies" `Quick
      test_monotone_certifies;
    Alcotest.test_case "monotone: injected bug degrades search" `Quick
      test_monotone_catches_injected_bug;
    Alcotest.test_case "verify unroll" `Quick test_verify_unroll;
    Alcotest.test_case "verify interchange" `Quick test_verify_interchange;
    Alcotest.test_case "verify tile" `Quick test_verify_tile;
    Alcotest.test_case "parse errors are located" `Quick test_parse_located;
    Alcotest.test_case "engine fence diagnostics" `Quick
      test_engine_fence_attaches_diagnostics;
    Alcotest.test_case "explain verdicts" `Quick test_explain_models ]
