(* Properties of Ir.Canon: idempotence, alpha-renaming invariance, and
   digest injectivity up to structural equality over generated nests. *)

open Ujam_ir

(* Rebuild a nest with every loop variable renamed (and the nest label
   changed): the canonical form, and therefore the digest, must not
   move.  Bounds and subscripts address levels through affine
   coefficients, so renaming touches only the [var] spellings. *)
let alpha_rename tag (n : Nest.t) =
  let loops =
    Array.to_list (Nest.loops n)
    |> List.map (fun (l : Loop.t) ->
           Loop.make
             ~var:(Printf.sprintf "%s%d" tag l.Loop.level)
             ~level:l.Loop.level ~lo:l.Loop.lo ~hi:l.Loop.hi ~step:l.Loop.step)
  in
  Nest.make ~name:(tag ^ "_renamed") ~loops ~body:(Nest.body n)

(* Swap the operands of every commutative binary node. *)
let rec flip_expr (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Scalar _ | Expr.Read _ -> e
  | Expr.Neg a -> Expr.Neg (flip_expr a)
  | Expr.Bin (op, a, b) -> (
      let a = flip_expr a and b = flip_expr b in
      match op with
      | Expr.Add | Expr.Mul -> Expr.Bin (op, b, a)
      | Expr.Sub | Expr.Div -> Expr.Bin (op, a, b))

let flip_nest (n : Nest.t) =
  Nest.make ~name:(Nest.name n)
    ~loops:(Array.to_list (Nest.loops n))
    ~body:
      (List.map
         (fun (s : Stmt.t) -> Stmt.assign s.Stmt.lhs (flip_expr s.Stmt.rhs))
         (Nest.body n))

let idempotent =
  QCheck2.Test.make ~name:"canon idempotent" ~count:200
    ~print:Gen.nest_print (Gen.nest_gen ())
    (fun nest ->
      let c = Canon.canon nest in
      String.equal (Canon.encode (Canon.canon c)) (Canon.encode c))

let alpha_stable =
  QCheck2.Test.make ~name:"digest stable under alpha-renaming" ~count:200
    ~print:Gen.nest_print (Gen.nest_gen ())
    (fun nest ->
      String.equal (Canon.digest nest) (Canon.digest (alpha_rename "x" nest))
      && String.equal
           (Canon.digest (alpha_rename "u" nest))
           (Canon.digest (alpha_rename "veryLongName" nest)))

let commutative_stable =
  QCheck2.Test.make ~name:"digest stable under commutative operand swap"
    ~count:200 ~print:Gen.nest_print (Gen.nest_gen ())
    (fun nest ->
      String.equal (Canon.digest nest) (Canon.digest (flip_nest nest)))

(* Digest agreement on a pair of independently generated nests must
   coincide exactly with structural equality of canonical forms: the
   hash never separates equal nests, and (barring an MD5 collision,
   which the generator space cannot produce) never conflates distinct
   ones. *)
let collision_iff_equal =
  QCheck2.Test.make ~name:"digests collide iff structurally equal" ~count:300
    ~print:(fun (a, b) -> Gen.nest_print a ^ "\n--- vs ---\n" ^ Gen.nest_print b)
    (QCheck2.Gen.pair (Gen.nest_gen ()) (Gen.nest_gen ()))
    (fun (a, b) ->
      Bool.equal
        (String.equal (Canon.digest a) (Canon.digest b))
        (Canon.equal a b))

let test_distinct_structures () =
  let parse src =
    match Parse.nest src with
    | Ok n -> n
    | Error e -> Alcotest.failf "parse: %a" Parse.pp_error e
  in
  let a = parse "DO I = 1, 10\n A(I) = A(I) + 1.0\nENDDO" in
  let b = parse "DO I = 1, 10\n A(I) = A(I) + 2.0\nENDDO" in
  let c = parse "DO I = 1, 11\n A(I) = A(I) + 1.0\nENDDO" in
  let d = parse "DO J = 1, 10\n A(J) = 1.0 + A(J)\nENDDO" in
  Alcotest.(check bool) "const differs" false (Canon.digest a = Canon.digest b);
  Alcotest.(check bool) "bound differs" false (Canon.digest a = Canon.digest c);
  Alcotest.(check string) "rename + swap collapse" (Canon.digest a)
    (Canon.digest d)

let test_name_dropped () =
  let parse name src =
    match Parse.nest ~name src with
    | Ok n -> n
    | Error e -> Alcotest.failf "parse: %a" Parse.pp_error e
  in
  let a = parse "first" "DO I = 1, 10\n A(I) = A(I-1)\nENDDO" in
  let b = parse "second" "DO I = 1, 10\n A(I) = A(I-1)\nENDDO" in
  Alcotest.(check string) "label-insensitive" (Canon.digest a) (Canon.digest b);
  Alcotest.(check string) "canonical name" "" (Nest.name (Canon.canon a))

let test_encode_injective_on_names () =
  (* encode (without canon) keeps spellings apart. *)
  let parse src =
    match Parse.nest src with
    | Ok n -> n
    | Error e -> Alcotest.failf "parse: %a" Parse.pp_error e
  in
  let a = parse "DO I = 1, 10\n A(I) = A(I-1)\nENDDO" in
  let b = parse "DO J = 1, 10\n A(J) = A(J-1)\nENDDO" in
  Alcotest.(check bool) "encode sees names" false
    (String.equal (Canon.encode a) (Canon.encode b))

let suite =
  [ Gen.to_alcotest idempotent;
    Gen.to_alcotest alpha_stable;
    Gen.to_alcotest commutative_stable;
    Gen.to_alcotest collision_iff_equal;
    Alcotest.test_case "distinct structures separate" `Quick
      test_distinct_structures;
    Alcotest.test_case "nest label dropped" `Quick test_name_dropped;
    Alcotest.test_case "raw encode keeps spellings" `Quick
      test_encode_injective_on_names ]
