(* The unroll-and-jam transformation itself. *)

open Ujam_linalg
open Ujam_ir
open Ujam_ir.Build

let v = Vec.of_list

let test_offsets () =
  let os = Unroll.offsets (v [ 1; 2; 0 ]) in
  Alcotest.(check int) "count" 6 (List.length os);
  Alcotest.(check bool) "lexicographically sorted" true
    (List.for_all2
       (fun a b -> Vec.compare a b < 0)
       (List.filteri (fun i _ -> i < 5) os)
       (List.tl os));
  Alcotest.(check bool) "first is zero" true (Vec.is_zero (List.hd os))

let test_identity () =
  let nest = Ujam_kernels.Kernels.jacobi ~n:10 () in
  let same = Unroll.unroll_and_jam nest (v [ 0; 0 ]) in
  Alcotest.(check int) "body unchanged" 1 (List.length (Nest.body same))

let test_validation () =
  let nest = Ujam_kernels.Kernels.jacobi ~n:10 () in
  Alcotest.check_raises "innermost rejected"
    (Invalid_argument "Unroll.unroll_and_jam: innermost loop must not be unrolled")
    (fun () -> ignore (Unroll.unroll_and_jam nest (v [ 0; 1 ])));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Unroll.unroll_and_jam: negative unroll amount") (fun () ->
      ignore (Unroll.unroll_and_jam nest (v [ -1; 0 ])));
  Alcotest.check_raises "dimension"
    (Invalid_argument "Unroll.unroll_and_jam: dimension") (fun () ->
      ignore (Unroll.unroll_and_jam nest (v [ 1 ])))

let test_structure () =
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let u = v [ 2; 1; 0 ] in
  let t = Unroll.unroll_and_jam nest u in
  Alcotest.(check int) "body copies" 6 (List.length (Nest.body t));
  Alcotest.(check int) "flops scale" (6 * Nest.flops_per_iteration nest)
    (Nest.flops_per_iteration t);
  let steps = Array.map (fun (l : Loop.t) -> l.Loop.step) (Nest.loops t) in
  Alcotest.(check (array int)) "steps multiplied" [| 3; 2; 1 |] steps;
  (* the J-offset-2, K-offset-1 copy reads A(I,K+1) and B(K+1,J+2) *)
  let has_ref base c =
    List.exists
      (fun (r, _) ->
        String.equal (Aref.base r) base && Vec.equal (Aref.c_vector r) c)
      (Nest.refs t)
  in
  Alcotest.(check bool) "shifted A copy" true (has_ref "A" (v [ 0; 1 ]));
  Alcotest.(check bool) "shifted B copy" true (has_ref "B" (v [ 1; 2 ]));
  Alcotest.(check bool) "shifted C copy" true (has_ref "C" (v [ 0; 2 ]))

let test_step_aware_shift () =
  (* Unrolling a loop that already has step 2 must shift subscripts by
     2 per copy. *)
  let d = 2 in
  let nest =
    nest "step2"
      [ Loop.make_const ~var:"J" ~level:0 ~depth:d ~lo:1 ~hi:16 ~step:2 ();
        loop d "I" ~level:1 ~lo:1 ~hi:8 () ]
      [ aref "A" [ var d 1; var d 0 ] <<- rd "B" [ var d 1; var d 0 ] ]
  in
  let t = Unroll.unroll_and_jam nest (v [ 1; 0 ]) in
  let cs =
    List.filter_map
      (fun (r, k) -> if k = `Write then Some (Aref.c_vector r) else None)
      (Nest.refs t)
  in
  Alcotest.(check bool) "copy offset is one original step" true
    (List.exists (fun c -> Vec.equal c (v [ 0; 2 ])) cs);
  Alcotest.(check int) "new step" 4 (Nest.loops t).(0).Loop.step

(* Semantics: interpret a nest numerically and compare original vs
   unrolled executions.  The interpreter evaluates statements over a
   float store keyed by (array, flattened subscripts). *)
let interpret nest =
  let store : (string * int list, float) Hashtbl.t = Hashtbl.create 997 in
  let read (r : Aref.t) iv =
    let key = (Aref.base r, Array.to_list (Array.map (fun s -> Affine.eval s iv) r.Aref.subs)) in
    match Hashtbl.find_opt store key with
    | Some x -> x
    | None ->
        (* deterministic pseudo-initial contents *)
        let h = Hashtbl.hash key land 0xFFFF in
        float_of_int h /. 65536.0
  in
  let write (r : Aref.t) iv x =
    let key = (Aref.base r, Array.to_list (Array.map (fun s -> Affine.eval s iv) r.Aref.subs)) in
    Hashtbl.replace store key x
  in
  let rec eval iv = function
    | Expr.Const f -> f
    | Expr.Scalar s -> float_of_int (Hashtbl.hash s land 0xFF) /. 256.0
    | Expr.Read r -> read r iv
    | Expr.Neg e -> -.eval iv e
    | Expr.Bin (op, a, b) -> (
        let x = eval iv a and y = eval iv b in
        match op with
        | Expr.Add -> x +. y
        | Expr.Sub -> x -. y
        | Expr.Mul -> x *. y
        | Expr.Div -> x /. (y +. 1.0))
  in
  Nest.iter_index_vectors nest (fun iv ->
      List.iter
        (fun (st : Stmt.t) ->
          let value = eval iv st.Stmt.rhs in
          match st.Stmt.lhs with
          | Stmt.Array_elt r -> write r iv value
          | Stmt.Scalar_var _ -> ())
        (Nest.body nest));
  store

let stores_equal a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun k v acc ->
         acc
         && match Hashtbl.find_opt b k with
            | Some v' -> Float.abs (v -. v') <= 1e-9 *. Float.max 1.0 (Float.abs v)
            | None -> false)
       a true

let test_semantics_preserved () =
  (* For kernels whose trip counts divide the unroll factors and whose
     dependences permit it, unroll-and-jam must compute the same values. *)
  List.iter
    (fun (nest, u) ->
      let t = Unroll.unroll_and_jam nest (v u) in
      Alcotest.(check bool)
        (Printf.sprintf "%s semantics preserved" (Nest.name nest))
        true
        (stores_equal (interpret nest) (interpret t)))
    [ (Ujam_kernels.Kernels.mmjki ~n:12 (), [ 1; 2; 0 ]);
      (Ujam_kernels.Kernels.mmjik ~n:12 (), [ 3; 1; 0 ]);
      (Ujam_kernels.Kernels.dmxpy0 ~n:12 (), [ 2; 0 ]);
      (Ujam_kernels.Kernels.jacobi ~n:14 (), [ 2; 0 ]);
      (Ujam_kernels.Kernels.cond7 ~n:14 (), [ 3; 0 ]);
      (Ujam_kernels.Kernels.vpenta7 ~n:14 (), [ 1; 0 ]) ]

(* Boundary behaviour: divisibility, clamping, trivial amounts, and
   jamming right above the innermost loop. *)

let stream_nest ?(hi = 10) () =
  let d = 2 in
  nest "stream"
    [ loop d "J" ~level:0 ~lo:1 ~hi ();
      loop d "I" ~level:1 ~lo:1 ~hi:8 () ]
    [ aref "A" [ var d 1; var d 0 ] <<- rd "B" [ var d 1; var d 0 ] ]

let test_divides () =
  let nest12 = Ujam_kernels.Kernels.mmjki ~n:12 () in
  Alcotest.(check bool) "zero vector always divides" true
    (Unroll.divides nest12 (v [ 0; 0; 0 ]));
  Alcotest.(check bool) "2,2 divide 12" true
    (Unroll.divides nest12 (v [ 1; 1; 0 ]));
  Alcotest.(check bool) "4,3 divide 12" true
    (Unroll.divides nest12 (v [ 3; 2; 0 ]));
  Alcotest.(check bool) "5 does not divide 12" false
    (Unroll.divides nest12 (v [ 4; 0; 0 ]));
  (* affine bounds: no constant trip count, vacuously true *)
  let d = 2 in
  let tri =
    nest "tri"
      [ loop d "J" ~level:0 ~lo:1 ~hi:10 ();
        loop_aff "I" ~level:1 ~lo:(var d 0) ~hi:(cst d 10) () ]
      [ aref "A" [ var d 1; var d 0 ] <<- rd "A" [ var d 1; var d 0 ] ]
  in
  Alcotest.(check bool) "affine bounds are vacuously divisible" true
    (Unroll.divides tri (v [ 4; 0 ]))

let test_clamp_divisible () =
  let n10 = stream_nest () in
  let check_clamp msg want u =
    Alcotest.(check bool) msg true
      (Vec.equal (v want) (Unroll.clamp_divisible n10 (v u)))
  in
  check_clamp "4 clamps to 2 over trip 10" [ 1; 0 ] [ 3; 0 ];
  check_clamp "5 already divides 10" [ 4; 0 ] [ 4; 0 ];
  check_clamp "full unroll kept" [ 9; 0 ] [ 9; 0 ];
  check_clamp "zero is a fixpoint" [ 0; 0 ] [ 0; 0 ];
  let n7 = stream_nest ~hi:7 () in
  Alcotest.(check bool) "prime trip clamps to identity" true
    (Vec.is_zero (Unroll.clamp_divisible n7 (v [ 5; 0 ])));
  (* the clamp's contract: pointwise <= u, divisible, and the clamped
     transformation preserves semantics where the raw one cannot *)
  let u = v [ 3; 0 ] in
  let u' = Unroll.clamp_divisible n10 u in
  Alcotest.(check bool) "clamped below" true
    (Vec.fold (fun acc x -> acc && x >= 0) true Vec.(sub u u'));
  Alcotest.(check bool) "clamped divides" true (Unroll.divides n10 u');
  Alcotest.(check bool) "clamped unroll preserves semantics" true
    (stores_equal (interpret n10) (interpret (Unroll.unroll_and_jam n10 u')))

let test_amount_one () =
  (* Unroll factor 1 (zero extra copies) is the identity even on nests
     whose trip counts nothing else divides. *)
  let n7 = stream_nest ~hi:7 () in
  Alcotest.(check bool) "factor 1 divides a prime trip" true
    (Unroll.divides n7 (v [ 0; 0 ]));
  let t = Unroll.unroll_and_jam n7 (v [ 0; 0 ]) in
  Alcotest.(check string) "identity transformation" (Nest.to_string n7)
    (Nest.to_string t)

let test_jam_above_innermost () =
  (* Unrolling the loop directly above the innermost one jams copies
     across the inner loop body; with a loop-carried flow dependence on
     the outer loop (A column recurrence) the jam is still legal and
     must compute the same values. *)
  let d = 2 in
  let rec_nest =
    nest "recur"
      [ loop d "J" ~level:0 ~lo:2 ~hi:9 ();
        loop d "I" ~level:1 ~lo:1 ~hi:8 () ]
      [ aref "A" [ var d 1; var d 0 ]
        <<- rd "A" [ var d 1; var d 0 -$ 1 ] +: rd "B" [ var d 1; var d 0 ] ]
  in
  let t = Unroll.unroll_and_jam rec_nest (v [ 1; 0 ]) in
  Alcotest.(check int) "two jammed copies" 2 (List.length (Nest.body t));
  Alcotest.(check bool) "recurrence semantics preserved" true
    (stores_equal (interpret rec_nest) (interpret t))

let prop_clamp_contract =
  QCheck2.Test.make ~name:"unroll: clamp is below, divisible, maximal-step"
    ~count:100
    (QCheck2.Gen.map
       (fun (nest, space) ->
         let bounds = Ujam_core.Unroll_space.bounds space in
         (nest, Vec.make bounds))
       (Gen.nest_and_space_gen ()))
    (fun (nest, u) ->
      let u' = Unroll.clamp_divisible nest u in
      Unroll.divides nest u'
      && Vec.fold (fun acc x -> acc && x >= 0) true Vec.(sub u u'))

let prop_copies_scale_refs =
  QCheck2.Test.make ~name:"unroll: reference count scales with copies" ~count:100
    (QCheck2.Gen.map
       (fun (nest, space) ->
         let bounds = Ujam_core.Unroll_space.bounds space in
         (nest, Vec.make bounds))
       (Gen.nest_and_space_gen ()))
    (fun (nest, u) ->
      let copies = Vec.fold (fun acc x -> acc * (x + 1)) 1 u in
      let t = Unroll.unroll_and_jam nest u in
      List.length (Nest.refs t) = copies * List.length (Nest.refs nest))

let suite =
  [ Alcotest.test_case "offsets" `Quick test_offsets;
    Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "step-aware shift" `Quick test_step_aware_shift;
    Alcotest.test_case "semantics preserved" `Quick test_semantics_preserved;
    Alcotest.test_case "divides" `Quick test_divides;
    Alcotest.test_case "clamp divisible" `Quick test_clamp_divisible;
    Alcotest.test_case "amount one" `Quick test_amount_one;
    Alcotest.test_case "jam above innermost" `Quick test_jam_above_innermost;
    Gen.to_alcotest prop_clamp_contract;
    Gen.to_alcotest prop_copies_scale_refs ]
