(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablations DESIGN.md calls out.

     dune exec bench/main.exe              all experiments
     dune exec bench/main.exe -- table1    Sec. 5.1 / Table 1
     dune exec bench/main.exe -- table2    Table 2
     dune exec bench/main.exe -- fig8      Figure 8 (DEC Alpha)
     dune exec bench/main.exe -- fig9      Figure 9 (HP PA-RISC)
     dune exec bench/main.exe -- ablation-model     UGS vs dependence model
     dune exec bench/main.exe -- ablation-brute     tables vs brute force
     dune exec bench/main.exe -- ablation-prefetch  prefetch-bandwidth sweep
     dune exec bench/main.exe -- ablation-permute   permutation pre-pass
     dune exec bench/main.exe -- ablation-registers register-file sweep
     dune exec bench/main.exe -- corpus    Engine.run_corpus throughput
     dune exec bench/main.exe -- speed     Bechamel micro-benchmarks
     dune exec bench/main.exe -- --quick   deterministic smoke subset

   Every experiment that draws a synthetic corpus honours a global
   "--seed S" option (default 1997, the pinned corpus seed). *)

open Ujam_linalg
open Ujam_core
open Ujam_engine

(* Generator seed for every synthetic corpus below; --seed overrides.
   The default matches Generator.corpus's own, keeping the pinned
   --quick cram output stable. *)
let seed = ref 1997

let section title =
  Format.printf "@.=============================================================@.";
  Format.printf "%s@." title;
  Format.printf "=============================================================@."

(* ------------------------------------------------------------------ *)
(* Table 1: input-dependence share of routine dependence graphs.      *)

let table1 () =
  section "Table 1 — percentage of input dependences (Sec. 5.1)";
  Format.printf
    "corpus: the 19 suite kernels + synthetic routines, 1187 total (the@.\
     paper's routine count for SPEC92/Perfect/NAS/local)@.@.";
  let synthetic = Ujam_workload.Generator.corpus ~seed:!seed ~count:1168 () in
  let kernel_routines =
    List.map
      (fun (e : Ujam_kernels.Catalogue.entry) ->
        { Ujam_workload.Generator.name = e.Ujam_kernels.Catalogue.name;
          nests = [ e.Ujam_kernels.Catalogue.build ~n:24 () ] })
      Ujam_kernels.Catalogue.all
  in
  let report = Ujam_workload.Corpus.measure (kernel_routines @ synthetic) in
  Format.printf "%a@." Ujam_workload.Corpus.pp report;
  Format.printf
    "paper reported: 649/1187 routines with dependences; 84%% of 305,885@.\
     dependences input; mean 55.7%% per routine (stddev 33.6); buckets@.\
     0%%:69  1-32%%:101  33-39%%:65  40-49%%:67  50-59%%:48  60-69%%:46@.\
     70-79%%:48  80-89%%:43  90-100%%:162@."

(* ------------------------------------------------------------------ *)
(* Table 2: the evaluation suite.                                      *)

let table2 () =
  section "Table 2 — description of test loops";
  Format.printf "%a@." Ujam_kernels.Catalogue.pp_table ()

(* ------------------------------------------------------------------ *)
(* Figures 8 and 9: normalized execution time per loop.                *)

let bar width v =
  (* one '#' per 0.05 of normalized time, capped for display *)
  let n = min width (int_of_float (v /. 0.05)) in
  String.make (max 0 n) '#'

let figure machine =
  let rows =
    List.map
      (fun (e : Ujam_kernels.Catalogue.entry) ->
        let nest = e.Ujam_kernels.Catalogue.build () in
        let baseline = Ujam_sim.Runner.run ~machine nest in
        let normalized cache =
          let r = Driver.optimize ~bound:8 ~cache ~machine nest in
          let sim =
            Ujam_sim.Runner.run ~machine ~plan:r.Driver.plan r.Driver.transformed
          in
          (r.Driver.choice.Search.u, Ujam_sim.Runner.normalized ~baseline sim)
        in
        let u_nc, nocache = normalized false in
        let u_c, cache = normalized true in
        (e.Ujam_kernels.Catalogue.name, u_nc, nocache, u_c, cache))
      Ujam_kernels.Catalogue.all
  in
  Format.printf "%-10s %-9s %-8s %-9s %-8s@." "loop" "u(nocache)" "nocache"
    "u(cache)" "cache";
  List.iter
    (fun (name, u_nc, nocache, u_c, cache) ->
      Format.printf "%-10s %-9s %-8.3f %-9s %-8.3f@." name (Vec.to_string u_nc)
        nocache (Vec.to_string u_c) cache)
    rows;
  let geomean sel =
    exp
      (List.fold_left (fun acc r -> acc +. log (sel r)) 0.0 rows
      /. float_of_int (List.length rows))
  in
  Format.printf "@.geometric mean normalized time: nocache %.3f, cache %.3f@."
    (geomean (fun (_, _, v, _, _) -> v))
    (geomean (fun (_, _, _, _, v) -> v));
  Format.printf "@.normalized execution time (1.0 = original; shorter is faster):@.";
  List.iter
    (fun (name, _, nocache, _, cache) ->
      Format.printf "%-10s original |%s@.%-10s nocache  |%s@.%-10s cache    |%s@.@."
        name (bar 40 1.0) "" (bar 40 nocache) "" (bar 40 cache))
    rows

let fig8 () =
  section "Figure 8 — performance of test loops on DEC Alpha";
  figure Ujam_machine.Presets.alpha

let fig9 () =
  section "Figure 9 — performance of test loops on HP PA-RISC";
  figure Ujam_machine.Presets.hppa

(* ------------------------------------------------------------------ *)
(* Ablation A1: UGS model vs dependence-based model vs brute force.    *)

let time_it f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let choose_with m ctx =
  let module M = (val m : Model.MODEL) in
  (M.analyze ctx).Search.u

let ablation_model () =
  section "Ablation A1 — UGS tables vs dependence-based model (Sec. 5.2)";
  let machine = Ujam_machine.Presets.alpha in
  let models = List.filter_map Model.find [ "ugs"; "dep"; "brute" ] in
  Format.printf "%-10s %-10s %-10s %-10s %-6s %-18s@." "loop" "u(UGS)" "u(dep)"
    "u(brute)" "agree" "graph edges (in/out)";
  let agree_all = ref true in
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build ~n:24 () in
      let d = Ujam_ir.Nest.depth nest in
      (* one shared context: every strategy sees the same safety vector,
         locality ranking, and unroll space *)
      let ctx = Analysis_ctx.create ~bound:4 ~machine nest in
      let us = List.map (fun m -> choose_with m ctx) models in
      let u_ugs, u_dep, u_bf =
        match us with [ a; b; c ] -> (a, b, c) | _ -> assert false
      in
      let with_input, without = Depmodel.graph_cost nest (Vec.zero d) in
      let agree = Vec.equal u_ugs u_dep && Vec.equal u_ugs u_bf in
      if not agree then agree_all := false;
      Format.printf "%-10s %-10s %-10s %-10s %-6s %d/%d@."
        e.Ujam_kernels.Catalogue.name (Vec.to_string u_ugs) (Vec.to_string u_dep)
        (Vec.to_string u_bf)
        (if agree then "yes" else "NO")
        with_input without)
    Ujam_kernels.Catalogue.all;
  Format.printf "@.all models agree: %b (afold holds the one coupled-subscript@."
    !agree_all;
  Format.printf
    "reference, C(I+J-1), where distance vectors are coarser than linear@.\
     algebra — the paper's Sec. 3.5 restriction)@."

(* ------------------------------------------------------------------ *)
(* Ablation A2: cost of the table approach vs brute-force unrolling.   *)

let ablation_brute () =
  section "Ablation A2 — analysis cost: tables vs brute force (Sec. 5.3)";
  let machine = Ujam_machine.Presets.alpha in
  Format.printf "%-10s %-12s %-12s %-12s %-8s@." "loop" "tables (s)" "brute (s)"
    "depgraph (s)" "speedup";
  let tot_t = ref 0.0 and tot_b = ref 0.0 and tot_d = ref 0.0 in
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build ~n:24 () in
      (* one fresh context per kernel: the tables column pays its own
         balance-table build (the ctx is cold when Ugs_tables runs), while
         the baselines reuse the already-ranked unroll space — the paper's
         framing of "analysis the tables save" *)
      let ctx = Analysis_ctx.create ~bound:6 ~machine nest in
      let _, t_tables =
        time_it (fun () -> choose_with (module Model.Ugs_tables) ctx)
      in
      let _, t_brute =
        time_it (fun () -> choose_with (module Model.Brute_force) ctx)
      in
      let _, t_dep =
        time_it (fun () -> choose_with (module Model.Dep_based) ctx)
      in
      tot_t := !tot_t +. t_tables;
      tot_b := !tot_b +. t_brute;
      tot_d := !tot_d +. t_dep;
      Format.printf "%-10s %-12.4f %-12.4f %-12.4f %.1fx@."
        e.Ujam_kernels.Catalogue.name t_tables t_brute t_dep
        (t_brute /. Float.max 1e-9 t_tables))
    Ujam_kernels.Catalogue.all;
  Format.printf "%-10s %-12.4f %-12.4f %-12.4f %.1fx@." "total" !tot_t !tot_b
    !tot_d (!tot_b /. Float.max 1e-9 !tot_t)

(* ------------------------------------------------------------------ *)
(* Ablation A3: prefetch bandwidth (Sec. 3.2's pi term).               *)

let ablation_prefetch () =
  section "Ablation A3 — prefetch-issue bandwidth sweep";
  Format.printf "%-10s" "loop";
  let bws = [ 0.0; 0.1; 0.25; 0.5; 1.0 ] in
  List.iter (fun bw -> Format.printf " pi=%-9.2f" bw) bws;
  Format.printf "@.";
  List.iter
    (fun name ->
      let e = Option.get (Ujam_kernels.Catalogue.find name) in
      let nest = e.Ujam_kernels.Catalogue.build ~n:48 () in
      Format.printf "%-10s" name;
      List.iter
        (fun prefetch_bandwidth ->
          let machine = Ujam_machine.Presets.generic ~prefetch_bandwidth () in
          let r = Driver.optimize ~bound:6 ~machine nest in
          Format.printf " %-8s b=%.2f"
            (Vec.to_string r.Driver.choice.Search.u)
            r.Driver.choice.Search.balance)
        bws;
      Format.printf "@.")
    [ "dmxpy0"; "mmjki"; "sor"; "jacobi" ]

(* ------------------------------------------------------------------ *)
(* Ablation A4: loop permutation as a pre-pass (Wolf-Maydan-Chen        *)
(* combine permutation with unroll-and-jam; we measure what it adds).  *)

let ablation_permute () =
  section "Ablation A4 — permutation pre-pass (Wolf–Maydan–Chen setting)";
  let machine = Ujam_machine.Presets.alpha in
  Format.printf "%-10s %-12s %-10s %-10s %-10s@." "loop" "permutation" "ujam"
    "perm+ujam" "perm cost";
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build () in
      let baseline = Ujam_sim.Runner.run ~machine nest in
      let plain = Driver.optimize ~bound:8 ~machine nest in
      let t_plain =
        Ujam_sim.Runner.normalized ~baseline
          (Ujam_sim.Runner.run ~machine ~plan:plain.Driver.plan
             plain.Driver.transformed)
      in
      let choice, combined = Permute.optimize ~bound:8 ~machine nest in
      let t_comb =
        Ujam_sim.Runner.normalized ~baseline
          (Ujam_sim.Runner.run ~machine ~plan:combined.Driver.plan
             combined.Driver.transformed)
      in
      Format.printf "%-10s %-12s %-10.3f %-10.3f %.3f->%.3f@."
        e.Ujam_kernels.Catalogue.name
        (String.concat ";"
           (Array.to_list (Array.map string_of_int choice.Permute.permutation)))
        t_plain t_comb choice.Permute.original_cost choice.Permute.cost)
    Ujam_kernels.Catalogue.all

(* ------------------------------------------------------------------ *)
(* Ablation A5: register-file size (the paper's future work on          *)
(* architectures with larger register sets).                            *)

let ablation_registers () =
  section "Ablation A5 — register-file size sweep (future work, Sec. 6)";
  let regs = [ 8; 16; 32; 64; 128 ] in
  Format.printf "%-10s" "loop";
  List.iter (fun r -> Format.printf " %-16s" (Printf.sprintf "R=%d" r)) regs;
  Format.printf "@.";
  List.iter
    (fun name ->
      let e = Option.get (Ujam_kernels.Catalogue.find name) in
      let nest = e.Ujam_kernels.Catalogue.build () in
      Format.printf "%-10s" name;
      List.iter
        (fun fp_registers ->
          let machine =
            Ujam_machine.Machine.make ~name:"sweep" ~fp_registers
              ~cache_size:16384 ~cache_line:4 ~miss_penalty:24 ~fp_latency:6 ()
          in
          let baseline = Ujam_sim.Runner.run ~machine nest in
          let r = Driver.optimize ~bound:10 ~machine nest in
          let t =
            Ujam_sim.Runner.normalized ~baseline
              (Ujam_sim.Runner.run ~machine ~plan:r.Driver.plan
                 r.Driver.transformed)
          in
          Format.printf " %-8s t=%.3f"
            (Vec.to_string r.Driver.choice.Search.u)
            t)
        regs;
      Format.printf "@.")
    [ "mmjki"; "mmjik"; "dmxpy0"; "sor"; "gmtry.3"; "afold" ]

(* ------------------------------------------------------------------ *)
(* Engine corpus throughput: the parallel work queue at 1..N domains.  *)

let corpus_throughput () =
  section "Engine.run_corpus throughput (synthetic corpus, bound 4)";
  let machine = Ujam_machine.Presets.alpha in
  let count = 200 in
  let routines = Ujam_workload.Generator.corpus ~seed:!seed ~count () in
  let reference = ref None in
  List.iter
    (fun domains ->
      let r = Engine.run_corpus ~domains ~bound:4 ~machine routines in
      let rendered = Engine.to_string r in
      let deterministic =
        match !reference with
        | None -> reference := Some rendered; true
        | Some expect -> String.equal expect rendered
      in
      Format.printf
        "domains=%d: %d nests ok, %d failed, wall %.3fs (%.0f routines/s), \
         output identical to 1-domain run: %b@."
        domains r.Engine.ok r.Engine.failed r.Engine.elapsed_s
        (float_of_int count /. Float.max 1e-9 r.Engine.elapsed_s)
        deterministic;
      Format.printf "  %a@." Engine.pp_timings r)
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* --quick: a deterministic smoke subset for cram — no wall-clock       *)
(* numbers, small sizes, fixed seeds.                                   *)

let quick () =
  section "Quick smoke — strategy matrix (shared context per kernel)";
  let machine = Ujam_machine.Presets.alpha in
  Format.printf "%-10s" "loop";
  List.iter (fun m -> Format.printf " %-10s" (Model.name m)) Model.all;
  Format.printf "@.";
  List.iter
    (fun name ->
      let e = Option.get (Ujam_kernels.Catalogue.find name) in
      let nest = e.Ujam_kernels.Catalogue.build ~n:12 () in
      let ctx = Analysis_ctx.create ~bound:3 ~machine nest in
      Format.printf "%-10s" name;
      List.iter
        (fun m -> Format.printf " %-10s" (Vec.to_string (choose_with m ctx)))
        Model.all;
      Format.printf "@.")
    [ "dmxpy0"; "mmjki"; "sor"; "jacobi" ];
  section "Quick smoke — engine corpus (20 routines, 2 domains)";
  let report =
    Engine.run_corpus ~domains:2 ~bound:3 ~machine
      (Ujam_workload.Generator.corpus ~seed:!seed ~count:20 ())
  in
  Format.printf "%a@." Engine.pp report

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment pipeline.   *)

let speed () =
  section "Bechamel micro-benchmarks";
  let open Bechamel in
  let machine = Ujam_machine.Presets.alpha in
  let nest = Ujam_kernels.Kernels.mmjki ~n:24 () in
  let d = Ujam_ir.Nest.depth nest in
  let localized = Subspace.span_dims ~dim:d [ d - 1 ] in
  let bounds = [| 4; 4; 0 |] in
  let space = Unroll_space.make ~bounds in
  let tests =
    [ Test.make ~name:"table1:corpus-50-routines"
        (Staged.stage (fun () ->
             Ujam_workload.Corpus.measure
               (Ujam_workload.Generator.corpus ~seed:!seed ~count:50 ())));
      Test.make ~name:"table2:catalogue-build"
        (Staged.stage (fun () ->
             List.map
               (fun (e : Ujam_kernels.Catalogue.entry) ->
                 e.Ujam_kernels.Catalogue.build ~n:12 ())
               Ujam_kernels.Catalogue.all));
      Test.make ~name:"fig8:select+transform-mmjki"
        (Staged.stage (fun () -> Driver.optimize ~bound:4 ~machine nest));
      Test.make ~name:"fig8:simulate-mmjki-n24"
        (Staged.stage (fun () -> Ujam_sim.Runner.run ~machine nest));
      Test.make ~name:"core:gts-table-build"
        (Staged.stage (fun () ->
             List.map
               (fun g -> Tables.gts_table space ~localized g)
               (Ujam_reuse.Ugs.of_nest nest)));
      Test.make ~name:"core:memory-table-build"
        (Staged.stage (fun () -> Rrs.memory_table space ~localized nest));
      Test.make ~name:"baseline:bruteforce-search"
        (Staged.stage (fun () -> Bruteforce.best ~cache:true ~machine space nest));
      Test.make ~name:"baseline:depmodel-search"
        (Staged.stage (fun () -> Depmodel.best ~cache:true ~machine space nest)) ]
  in
  let test = Test.make_grouped ~name:"ujam" ~fmt:"%s/%s" tests in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
    in
    let raw_results = Benchmark.all cfg instances test in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    Analyze.merge ols instances results
  in
  let results = benchmark () in
  Hashtbl.iter
    (fun _measure (by_name : (string, Analyze.OLS.t) Hashtbl.t) ->
      let rows =
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) by_name []
        |> List.sort compare
      in
      Format.printf "%-40s %s@." "benchmark" "ns/run";
      List.iter
        (fun (name, ols) ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some [ e ] -> Printf.sprintf "%.0f" e
            | Some _ | None -> "n/a"
          in
          Format.printf "%-40s %s@." name est)
        rows)
    results

(* ------------------------------------------------------------------ *)

let all () =
  table1 ();
  table2 ();
  fig8 ();
  fig9 ();
  ablation_model ();
  ablation_brute ();
  ablation_prefetch ();
  ablation_permute ();
  ablation_registers ();
  corpus_throughput ();
  speed ()

(* Strip "--seed S" out of the argument list before dispatching. *)
let rec extract_seed = function
  | [] -> []
  | "--seed" :: v :: rest ->
      (match int_of_string_opt v with
      | Some s -> seed := s
      | None ->
          Format.eprintf "--seed: expected an integer, got %S@." v;
          exit 2);
      extract_seed rest
  | arg :: rest -> arg :: extract_seed rest

let () =
  match extract_seed (Array.to_list Sys.argv) with
  | [ _ ] -> all ()
  | _ :: args ->
      List.iter
        (function
          | "table1" -> table1 ()
          | "table2" -> table2 ()
          | "fig8" -> fig8 ()
          | "fig9" -> fig9 ()
          | "ablation-model" -> ablation_model ()
          | "ablation-brute" -> ablation_brute ()
          | "ablation-prefetch" -> ablation_prefetch ()
          | "ablation-permute" -> ablation_permute ()
          | "ablation-registers" -> ablation_registers ()
          | "corpus" -> corpus_throughput ()
          | "speed" -> speed ()
          | "--quick" | "quick" -> quick ()
          | "all" -> all ()
          | other ->
              Format.eprintf
                "unknown experiment %S (table1 table2 fig8 fig9 ablation-model \
                 ablation-brute ablation-prefetch ablation-permute ablation-registers \
                 corpus speed all --quick)@."
                other;
              exit 2)
        args
  | [] -> all ()
