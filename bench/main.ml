(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, plus the ablations DESIGN.md calls out.

     dune exec bench/main.exe              all experiments
     dune exec bench/main.exe -- table1    Sec. 5.1 / Table 1
     dune exec bench/main.exe -- table2    Table 2
     dune exec bench/main.exe -- fig8      Figure 8 (DEC Alpha)
     dune exec bench/main.exe -- fig9      Figure 9 (HP PA-RISC)
     dune exec bench/main.exe -- ablation-model     UGS vs dependence model
     dune exec bench/main.exe -- ablation-brute     tables vs brute force
     dune exec bench/main.exe -- ablation-prefetch  prefetch-bandwidth sweep
     dune exec bench/main.exe -- ablation-permute   permutation pre-pass
     dune exec bench/main.exe -- ablation-registers register-file sweep
     dune exec bench/main.exe -- corpus    Engine.run_corpus throughput
     dune exec bench/main.exe -- table-build  sweep vs per-cell table builds
     dune exec bench/main.exe -- search    pruned vs exhaustive unroll search
     dune exec bench/main.exe -- serve     daemon load generator, cold vs warm
     dune exec bench/main.exe -- reuse     miss-ratio predictor accuracy/speed
     dune exec bench/main.exe -- speed     Bechamel micro-benchmarks
     dune exec bench/main.exe -- --quick   deterministic smoke subset

   Every experiment that draws a synthetic corpus honours a global
   "--seed S" option (default 1997, the pinned corpus seed).

   Every experiment routes through one [report] record: the text body
   is rendered into a buffer, wall time and per-experiment metrics are
   captured alongside, and the same record feeds both the terminal
   output and the perf-trajectory JSON ("--json", writing a
   schema-versioned BENCH_<n>.json).  "--compare A.json B.json" diffs
   two such files and exits non-zero on a throughput regression beyond
   "--threshold" (default 0.10 = 10%). *)

open Ujam_linalg
open Ujam_core
open Ujam_engine

let schema_version = 1
let bench_generation = 8

(* Generator seed for every synthetic corpus below; --seed overrides.
   The default matches Generator.corpus's own, keeping the pinned
   --quick cram output stable. *)
let seed = ref 1997

(* ------------------------------------------------------------------ *)
(* The report record: one per experiment, feeding text and JSON.       *)

type report = {
  name : string;  (** stable key, used by --compare to pair runs *)
  title : string;  (** section header shown in text mode *)
  wall_s : float;
  items : int;  (** work items processed; throughput = items / wall_s *)
  minor_words : float;  (** words allocated on the minor heap *)
  major_words : float;  (** words allocated directly on the major heap *)
  metrics : (string * float) list;
  body : string;  (** rendered text output *)
}

let throughput r = float_of_int r.items /. Float.max 1e-9 r.wall_s

(* ------------------------------------------------------------------ *)
(* Table 1: input-dependence share of routine dependence graphs.      *)

let table1 ppf =
  Format.fprintf ppf
    "corpus: the 19 suite kernels + synthetic routines, 1187 total (the@.\
     paper's routine count for SPEC92/Perfect/NAS/local)@.@.";
  let synthetic = Ujam_workload.Generator.corpus ~seed:!seed ~count:1168 () in
  let kernel_routines =
    List.map
      (fun (e : Ujam_kernels.Catalogue.entry) ->
        { Ujam_workload.Generator.name = e.Ujam_kernels.Catalogue.name;
          nests = [ e.Ujam_kernels.Catalogue.build ~n:24 () ] })
      Ujam_kernels.Catalogue.all
  in
  let routines = kernel_routines @ synthetic in
  let report = Ujam_workload.Corpus.measure routines in
  Format.fprintf ppf "%a@." Ujam_workload.Corpus.pp report;
  Format.fprintf ppf
    "paper reported: 649/1187 routines with dependences; 84%% of 305,885@.\
     dependences input; mean 55.7%% per routine (stddev 33.6); buckets@.\
     0%%:69  1-32%%:101  33-39%%:65  40-49%%:67  50-59%%:48  60-69%%:46@.\
     70-79%%:48  80-89%%:43  90-100%%:162@.";
  (List.length routines, [])

(* ------------------------------------------------------------------ *)
(* Table 2: the evaluation suite.                                      *)

let table2 ppf =
  Format.fprintf ppf "%a@." Ujam_kernels.Catalogue.pp_table ();
  (List.length Ujam_kernels.Catalogue.all, [])

(* ------------------------------------------------------------------ *)
(* Figures 8 and 9: normalized execution time per loop.                *)

let bar width v =
  (* one '#' per 0.05 of normalized time, capped for display *)
  let n = min width (int_of_float (v /. 0.05)) in
  String.make (max 0 n) '#'

let figure machine ppf =
  let rows =
    List.map
      (fun (e : Ujam_kernels.Catalogue.entry) ->
        let nest = e.Ujam_kernels.Catalogue.build () in
        let baseline = Ujam_sim.Runner.run ~machine nest in
        let normalized cache =
          let r = Driver.optimize ~bound:8 ~cache ~machine nest in
          let sim =
            Ujam_sim.Runner.run ~machine ~plan:r.Driver.plan r.Driver.transformed
          in
          (r.Driver.choice.Search.u, Ujam_sim.Runner.normalized ~baseline sim)
        in
        let u_nc, nocache = normalized false in
        let u_c, cache = normalized true in
        (e.Ujam_kernels.Catalogue.name, u_nc, nocache, u_c, cache))
      Ujam_kernels.Catalogue.all
  in
  Format.fprintf ppf "%-10s %-9s %-8s %-9s %-8s@." "loop" "u(nocache)" "nocache"
    "u(cache)" "cache";
  List.iter
    (fun (name, u_nc, nocache, u_c, cache) ->
      Format.fprintf ppf "%-10s %-9s %-8.3f %-9s %-8.3f@." name
        (Vec.to_string u_nc) nocache (Vec.to_string u_c) cache)
    rows;
  let geomean sel =
    exp
      (List.fold_left (fun acc r -> acc +. log (sel r)) 0.0 rows
      /. float_of_int (List.length rows))
  in
  let gm_nocache = geomean (fun (_, _, v, _, _) -> v) in
  let gm_cache = geomean (fun (_, _, _, _, v) -> v) in
  Format.fprintf ppf
    "@.geometric mean normalized time: nocache %.3f, cache %.3f@." gm_nocache
    gm_cache;
  Format.fprintf ppf
    "@.normalized execution time (1.0 = original; shorter is faster):@.";
  List.iter
    (fun (name, _, nocache, _, cache) ->
      Format.fprintf ppf
        "%-10s original |%s@.%-10s nocache  |%s@.%-10s cache    |%s@.@." name
        (bar 40 1.0) "" (bar 40 nocache) "" (bar 40 cache))
    rows;
  ( List.length rows,
    [ ("geomean_nocache", gm_nocache); ("geomean_cache", gm_cache) ] )

let fig8 ppf = figure Ujam_machine.Presets.alpha ppf
let fig9 ppf = figure Ujam_machine.Presets.hppa ppf

(* ------------------------------------------------------------------ *)
(* Ablation A1: UGS model vs dependence-based model vs brute force.    *)

let time_it f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let choose_with m ctx =
  let module M = (val m : Model.MODEL) in
  (M.analyze ctx).Search.u

let ablation_model ppf =
  let machine = Ujam_machine.Presets.alpha in
  let models = List.filter_map Model.find [ "ugs"; "dep"; "brute" ] in
  Format.fprintf ppf "%-10s %-10s %-10s %-10s %-6s %-18s@." "loop" "u(UGS)"
    "u(dep)" "u(brute)" "agree" "graph edges (in/out)";
  let agree_all = ref true in
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build ~n:24 () in
      let d = Ujam_ir.Nest.depth nest in
      (* one shared context: every strategy sees the same safety vector,
         locality ranking, and unroll space *)
      let ctx = Analysis_ctx.create ~bound:4 ~machine nest in
      let us = List.map (fun m -> choose_with m ctx) models in
      let u_ugs, u_dep, u_bf =
        match us with [ a; b; c ] -> (a, b, c) | _ -> assert false
      in
      let with_input, without = Depmodel.graph_cost nest (Vec.zero d) in
      let agree = Vec.equal u_ugs u_dep && Vec.equal u_ugs u_bf in
      if not agree then agree_all := false;
      Format.fprintf ppf "%-10s %-10s %-10s %-10s %-6s %d/%d@."
        e.Ujam_kernels.Catalogue.name (Vec.to_string u_ugs) (Vec.to_string u_dep)
        (Vec.to_string u_bf)
        (if agree then "yes" else "NO")
        with_input without)
    Ujam_kernels.Catalogue.all;
  Format.fprintf ppf
    "@.all models agree: %b (afold holds the one coupled-subscript@." !agree_all;
  Format.fprintf ppf
    "reference, C(I+J-1), where distance vectors are coarser than linear@.\
     algebra — the paper's Sec. 3.5 restriction)@.";
  ( List.length Ujam_kernels.Catalogue.all,
    [ ("agree_all", if !agree_all then 1.0 else 0.0) ] )

(* ------------------------------------------------------------------ *)
(* Ablation A2: cost of the table approach vs brute-force unrolling.   *)

let ablation_brute ppf =
  let machine = Ujam_machine.Presets.alpha in
  Format.fprintf ppf "%-10s %-12s %-12s %-12s %-8s@." "loop" "tables (s)"
    "brute (s)" "depgraph (s)" "speedup";
  let tot_t = ref 0.0 and tot_b = ref 0.0 and tot_d = ref 0.0 in
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build ~n:24 () in
      (* one fresh context per kernel: the tables column pays its own
         balance-table build (the ctx is cold when Ugs_tables runs), while
         the baselines reuse the already-ranked unroll space — the paper's
         framing of "analysis the tables save" *)
      let ctx = Analysis_ctx.create ~bound:6 ~machine nest in
      let _, t_tables =
        time_it (fun () -> choose_with (module Model.Ugs_tables) ctx)
      in
      let _, t_brute =
        time_it (fun () -> choose_with (module Model.Brute_force) ctx)
      in
      let _, t_dep =
        time_it (fun () -> choose_with (module Model.Dep_based) ctx)
      in
      tot_t := !tot_t +. t_tables;
      tot_b := !tot_b +. t_brute;
      tot_d := !tot_d +. t_dep;
      Format.fprintf ppf "%-10s %-12.4f %-12.4f %-12.4f %.1fx@."
        e.Ujam_kernels.Catalogue.name t_tables t_brute t_dep
        (t_brute /. Float.max 1e-9 t_tables))
    Ujam_kernels.Catalogue.all;
  Format.fprintf ppf "%-10s %-12.4f %-12.4f %-12.4f %.1fx@." "total" !tot_t
    !tot_b !tot_d
    (!tot_b /. Float.max 1e-9 !tot_t);
  ( List.length Ujam_kernels.Catalogue.all,
    [ ("total_tables_s", !tot_t);
      ("total_brute_s", !tot_b);
      ("total_depgraph_s", !tot_d);
      ("tables_speedup", !tot_b /. Float.max 1e-9 !tot_t) ] )

(* ------------------------------------------------------------------ *)
(* Ablation A3: prefetch bandwidth (Sec. 3.2's pi term).               *)

let ablation_prefetch ppf =
  Format.fprintf ppf "%-10s" "loop";
  let bws = [ 0.0; 0.1; 0.25; 0.5; 1.0 ] in
  List.iter (fun bw -> Format.fprintf ppf " pi=%-9.2f" bw) bws;
  Format.fprintf ppf "@.";
  let loops = [ "dmxpy0"; "mmjki"; "sor"; "jacobi" ] in
  List.iter
    (fun name ->
      let e = Option.get (Ujam_kernels.Catalogue.find name) in
      let nest = e.Ujam_kernels.Catalogue.build ~n:48 () in
      Format.fprintf ppf "%-10s" name;
      List.iter
        (fun prefetch_bandwidth ->
          let machine = Ujam_machine.Presets.generic ~prefetch_bandwidth () in
          let r = Driver.optimize ~bound:6 ~machine nest in
          Format.fprintf ppf " %-8s b=%.2f"
            (Vec.to_string r.Driver.choice.Search.u)
            r.Driver.choice.Search.balance)
        bws;
      Format.fprintf ppf "@.")
    loops;
  (List.length loops, [])

(* ------------------------------------------------------------------ *)
(* Ablation A4: loop permutation as a pre-pass (Wolf-Maydan-Chen        *)
(* combine permutation with unroll-and-jam; we measure what it adds).  *)

let ablation_permute ppf =
  let machine = Ujam_machine.Presets.alpha in
  Format.fprintf ppf "%-10s %-12s %-10s %-10s %-10s@." "loop" "permutation"
    "ujam" "perm+ujam" "perm cost";
  List.iter
    (fun (e : Ujam_kernels.Catalogue.entry) ->
      let nest = e.Ujam_kernels.Catalogue.build () in
      let baseline = Ujam_sim.Runner.run ~machine nest in
      let plain = Driver.optimize ~bound:8 ~machine nest in
      let t_plain =
        Ujam_sim.Runner.normalized ~baseline
          (Ujam_sim.Runner.run ~machine ~plan:plain.Driver.plan
             plain.Driver.transformed)
      in
      let choice, combined = Permute.optimize ~bound:8 ~machine nest in
      let t_comb =
        Ujam_sim.Runner.normalized ~baseline
          (Ujam_sim.Runner.run ~machine ~plan:combined.Driver.plan
             combined.Driver.transformed)
      in
      Format.fprintf ppf "%-10s %-12s %-10.3f %-10.3f %.3f->%.3f@."
        e.Ujam_kernels.Catalogue.name
        (String.concat ";"
           (Array.to_list (Array.map string_of_int choice.Permute.permutation)))
        t_plain t_comb choice.Permute.original_cost choice.Permute.cost)
    Ujam_kernels.Catalogue.all;
  (List.length Ujam_kernels.Catalogue.all, [])

(* ------------------------------------------------------------------ *)
(* Ablation A5: register-file size (the paper's future work on          *)
(* architectures with larger register sets).                            *)

let ablation_registers ppf =
  let regs = [ 8; 16; 32; 64; 128 ] in
  Format.fprintf ppf "%-10s" "loop";
  List.iter (fun r -> Format.fprintf ppf " %-16s" (Printf.sprintf "R=%d" r)) regs;
  Format.fprintf ppf "@.";
  let loops = [ "mmjki"; "mmjik"; "dmxpy0"; "sor"; "gmtry.3"; "afold" ] in
  List.iter
    (fun name ->
      let e = Option.get (Ujam_kernels.Catalogue.find name) in
      let nest = e.Ujam_kernels.Catalogue.build () in
      Format.fprintf ppf "%-10s" name;
      List.iter
        (fun fp_registers ->
          let machine =
            Ujam_machine.Machine.make ~name:"sweep" ~fp_registers
              ~cache_size:16384 ~cache_line:4 ~miss_penalty:24 ~fp_latency:6 ()
          in
          let baseline = Ujam_sim.Runner.run ~machine nest in
          let r = Driver.optimize ~bound:10 ~machine nest in
          let t =
            Ujam_sim.Runner.normalized ~baseline
              (Ujam_sim.Runner.run ~machine ~plan:r.Driver.plan
                 r.Driver.transformed)
          in
          Format.fprintf ppf " %-8s t=%.3f"
            (Vec.to_string r.Driver.choice.Search.u)
            t)
        regs;
      Format.fprintf ppf "@.")
    loops;
  (List.length loops, [])

(* ------------------------------------------------------------------ *)
(* Engine corpus throughput: the parallel work queue at 1..N domains.  *)

let corpus_throughput ppf =
  let machine = Ujam_machine.Presets.alpha in
  let count = 200 in
  let routines = Ujam_workload.Generator.corpus ~seed:!seed ~count () in
  let reference = ref None in
  let metrics = ref [] in
  List.iter
    (fun domains ->
      (* process-wide memos would let later domain counts ride on the
         first run's answers; clear them so every run pays full price
         and the determinism check stays honest *)
      Engine.memo_clear ();
      Ujam_ir.Canon.memo_clear ();
      let r = Engine.run_corpus ~domains ~bound:4 ~machine routines in
      let rendered = Engine.to_string r in
      let deterministic =
        match !reference with
        | None ->
            reference := Some rendered;
            true
        | Some expect -> String.equal expect rendered
      in
      let rps = float_of_int count /. Float.max 1e-9 r.Engine.elapsed_s in
      metrics :=
        (Printf.sprintf "routines_per_s_d%d" domains, rps) :: !metrics;
      if not deterministic then metrics := ("nondeterministic", 1.0) :: !metrics;
      Format.fprintf ppf
        "domains=%d: %d nests ok, %d failed, wall %.3fs (%.0f routines/s), \
         output identical to 1-domain run: %b@."
        domains r.Engine.ok r.Engine.failed r.Engine.elapsed_s rps deterministic;
      Format.fprintf ppf "  %a@." Engine.pp_timings r)
    [ 1; 2; 4 ];
  (count * 3, List.rev !metrics)

(* ------------------------------------------------------------------ *)
(* Hash-consing: sharing across the catalogue + a synthetic corpus,    *)
(* and the O(1) payoff of the memoized canonical digest.  The gate     *)
(* metrics are [sharing_ratio] > 0 and [digest_speedup] >= 10.         *)

let hashcons_bench ppf =
  let module H = Ujam_ir.Hashcons in
  H.clear ();
  H.reset_stats ();
  Ujam_ir.Canon.memo_clear ();
  let kernels =
    List.map
      (fun (e : Ujam_kernels.Catalogue.entry) ->
        e.Ujam_kernels.Catalogue.build ~n:12 ())
      Ujam_kernels.Catalogue.all
  in
  let corpus =
    Ujam_workload.Generator.corpus ~seed:!seed ~count:200 ()
    |> List.concat_map (fun r -> r.Ujam_workload.Generator.nests)
  in
  let nests = kernels @ corpus in
  let consed = List.map H.nest nests in
  let ratio = H.sharing_ratio () in
  let idempotent = List.for_all2 ( == ) consed (List.map H.nest consed) in
  Format.fprintf ppf
    "%d nests consed (%d kernels + %d corpus), sharing ratio %.3f@."
    (List.length nests) (List.length kernels) (List.length corpus) ratio;
  Format.fprintf ppf "%-8s %8s %8s %8s@." "table" "hits" "misses" "live";
  List.iter
    (fun (table, (s : H.stats)) ->
      Format.fprintf ppf "%-8s %8d %8d %8d@." table s.H.hits s.H.misses s.H.live)
    (H.stats ());
  (* the digest payoff: a consed nest answers Canon.digest from the
     identity-keyed memo; digest_uncached re-canonicalizes, re-encodes
     and re-hashes every time *)
  let sample = List.hd consed in
  let time reps f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do ignore (f () : string) done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  ignore (Ujam_ir.Canon.digest sample : string);
  let memo_s = time 100_000 (fun () -> Ujam_ir.Canon.digest sample) in
  let uncached_s = time 500 (fun () -> Ujam_ir.Canon.digest_uncached sample) in
  let speedup = uncached_s /. Float.max 1e-9 memo_s in
  Format.fprintf ppf
    "digest: memoized %.1f ns, uncached %.1f ns, speedup %.0fx@."
    (1e9 *. memo_s) (1e9 *. uncached_s) speedup;
  Format.fprintf ppf "consing idempotent: %b@." idempotent;
  (* the @hashcons-smoke gate rides on this experiment's exit code *)
  if not idempotent then failwith "hashcons: consing is not idempotent";
  if ratio <= 0.0 then failwith "hashcons: no sharing observed";
  if speedup < 10.0 then
    failwith "hashcons: memoized digest under 10x faster than uncached";
  ( List.length nests,
    [ ("sharing_ratio", ratio);
      ("digest_memo_ns", 1e9 *. memo_s);
      ("digest_uncached_ns", 1e9 *. uncached_s);
      ("digest_speedup", speedup);
      ("idempotent", if idempotent then 1.0 else 0.0) ] )

(* ------------------------------------------------------------------ *)
(* --quick: a deterministic smoke subset for cram — no wall-clock       *)
(* numbers, small sizes, fixed seeds.                                   *)

let quick_matrix ppf =
  let machine = Ujam_machine.Presets.alpha in
  Format.fprintf ppf "%-10s" "loop";
  List.iter (fun m -> Format.fprintf ppf " %-10s" (Model.name m)) Model.all;
  Format.fprintf ppf "@.";
  let loops = [ "dmxpy0"; "mmjki"; "sor"; "jacobi" ] in
  List.iter
    (fun name ->
      let e = Option.get (Ujam_kernels.Catalogue.find name) in
      let nest = e.Ujam_kernels.Catalogue.build ~n:12 () in
      let ctx = Analysis_ctx.create ~bound:3 ~machine nest in
      Format.fprintf ppf "%-10s" name;
      List.iter
        (fun m -> Format.fprintf ppf " %-10s" (Vec.to_string (choose_with m ctx)))
        Model.all;
      Format.fprintf ppf "@.")
    loops;
  (List.length loops, [])

let quick_corpus ppf =
  let machine = Ujam_machine.Presets.alpha in
  let count = 20 in
  let report =
    Engine.run_corpus ~domains:2 ~bound:3 ~machine
      (Ujam_workload.Generator.corpus ~seed:!seed ~count ())
  in
  Format.fprintf ppf "%a@." Engine.pp report;
  ( count,
    [ ("ok", float_of_int report.Engine.ok);
      ("failed", float_of_int report.Engine.failed) ] )

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment pipeline.   *)

let speed ppf =
  let open Bechamel in
  let machine = Ujam_machine.Presets.alpha in
  let nest = Ujam_kernels.Kernels.mmjki ~n:24 () in
  let d = Ujam_ir.Nest.depth nest in
  let localized = Subspace.span_dims ~dim:d [ d - 1 ] in
  let bounds = [| 4; 4; 0 |] in
  let space = Unroll_space.make ~bounds in
  let tests =
    [ Test.make ~name:"table1:corpus-50-routines"
        (Staged.stage (fun () ->
             Ujam_workload.Corpus.measure
               (Ujam_workload.Generator.corpus ~seed:!seed ~count:50 ())));
      Test.make ~name:"table2:catalogue-build"
        (Staged.stage (fun () ->
             List.map
               (fun (e : Ujam_kernels.Catalogue.entry) ->
                 e.Ujam_kernels.Catalogue.build ~n:12 ())
               Ujam_kernels.Catalogue.all));
      Test.make ~name:"fig8:select+transform-mmjki"
        (Staged.stage (fun () -> Driver.optimize ~bound:4 ~machine nest));
      Test.make ~name:"fig8:simulate-mmjki-n24"
        (Staged.stage (fun () -> Ujam_sim.Runner.run ~machine nest));
      Test.make ~name:"core:gts-table-build"
        (Staged.stage (fun () ->
             List.map
               (fun g -> Tables.gts_table space ~localized g)
               (Ujam_reuse.Ugs.of_nest nest)));
      Test.make ~name:"core:memory-table-build"
        (Staged.stage (fun () -> Rrs.memory_table space ~localized nest));
      Test.make ~name:"baseline:bruteforce-search"
        (Staged.stage (fun () -> Bruteforce.best ~cache:true ~machine space nest));
      Test.make ~name:"baseline:depmodel-search"
        (Staged.stage (fun () -> Depmodel.best ~cache:true ~machine space nest)) ]
  in
  let test = Test.make_grouped ~name:"ujam" ~fmt:"%s/%s" tests in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
    in
    let raw_results = Benchmark.all cfg instances test in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    Analyze.merge ols instances results
  in
  let results = benchmark () in
  let metrics = ref [] in
  Hashtbl.iter
    (fun _measure (by_name : (string, Analyze.OLS.t) Hashtbl.t) ->
      let rows =
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) by_name []
        |> List.sort compare
      in
      Format.fprintf ppf "%-40s %s@." "benchmark" "ns/run";
      List.iter
        (fun (name, ols) ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some [ e ] ->
                metrics := (name, e) :: !metrics;
                Printf.sprintf "%.0f" e
            | Some _ | None -> "n/a"
          in
          Format.fprintf ppf "%-40s %s@." name est)
        rows)
    results;
  (List.length tests, List.rev !metrics)

(* ------------------------------------------------------------------ *)
(* The sweep-engine payoff in isolation: exact group-count tables on a *)
(* depth-3 bound-8 space, built by the O(d*|U|) difference-array       *)
(* sweeps and by the per-cell reference recurrence.  The gate is a     *)
(* >= 10x gap (metric [speedup]); totals must agree.                   *)

let table_build ppf =
  let nest = Ujam_kernels.Kernels.mmjki ~n:16 () in
  let d = Ujam_ir.Nest.depth nest in
  let localized = Subspace.span_dims ~dim:d [ d - 1 ] in
  let space = Unroll_space.make ~bounds:[| 8; 8; 0 |] in
  let groups = Ujam_reuse.Ugs.of_nest nest in
  let time reps f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do f () done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  (* parity first, outside the timed loops: the sweep-built tables and
     the per-cell recurrence must report the same totals everywhere *)
  let sweep_total =
    List.fold_left
      (fun acc g ->
        let gt = Tables.gts_exact_table space ~localized g in
        let gs = Tables.gss_exact_table space ~localized g in
        Unroll_space.fold space acc (fun acc u ->
            acc + Unroll_space.Table.get gt u + Unroll_space.Table.get gs u))
      0 groups
  in
  let percell_total =
    List.fold_left
      (fun acc g ->
        Unroll_space.fold space acc (fun acc u ->
            acc
            + Tables.gts_exact space ~localized g u
            + Tables.gss_exact space ~localized g u))
      0 groups
  in
  let sweep_reps = 50 and percell_reps = 3 in
  let sweep_s =
    time sweep_reps (fun () ->
        List.iter
          (fun g ->
            ignore (Tables.gts_exact_table space ~localized g);
            ignore (Tables.gss_exact_table space ~localized g))
          groups)
  in
  let percell_s =
    time percell_reps (fun () ->
        List.iter
          (fun g ->
            Unroll_space.iter space (fun u ->
                ignore (Tables.gts_exact space ~localized g u);
                ignore (Tables.gss_exact space ~localized g u)))
          groups)
  in
  let speedup = percell_s /. Float.max 1e-9 sweep_s in
  Format.fprintf ppf "space 9x9x1 (%d cells), %d UGS groups@."
    (Unroll_space.card space) (List.length groups);
  Format.fprintf ppf "sweep    %.6fs/build (totals %d, %d reps)@." sweep_s
    sweep_total sweep_reps;
  Format.fprintf ppf "per-cell %.6fs/build (totals %d, %d reps)@." percell_s
    percell_total percell_reps;
  Format.fprintf ppf "agreement: %b, speedup %.1fx@."
    (sweep_total = percell_total) speedup;
  ( sweep_reps + percell_reps,
    [ ("sweep_s", sweep_s); ("percell_s", percell_s); ("speedup", speedup);
      ("agree", if sweep_total = percell_total then 1.0 else 0.0) ] )

(* Pruned vs exhaustive unroll-vector search over the catalogue at     *)
(* bound 6: identical choices, fewer cells evaluated.                  *)

let search_bench ppf =
  let machine = Ujam_machine.Presets.alpha in
  let ctxs =
    List.map
      (fun (e : Ujam_kernels.Catalogue.entry) ->
        let nest = e.Ujam_kernels.Catalogue.build ~n:12 () in
        ( e.Ujam_kernels.Catalogue.name,
          Analysis_ctx.create ~bound:6 ~machine nest ))
      Ujam_kernels.Catalogue.all
  in
  (* warm the balance tables so the loop times the search alone *)
  List.iter (fun (_, ctx) -> ignore (Analysis_ctx.balance ctx)) ctxs;
  let agree =
    List.for_all
      (fun (_, ctx) ->
        let b = Analysis_ctx.balance ctx in
        Search.best ~prune:true ~cache:true b
        = Search.best ~prune:false ~cache:true b)
      ctxs
  in
  let reps = 30 in
  let time prune =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      List.iter
        (fun (_, ctx) ->
          ignore (Search.best ~prune ~cache:true (Analysis_ctx.balance ctx)))
        ctxs
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let pruned_s = time true in
  let full_s = time false in
  let speedup = full_s /. Float.max 1e-9 pruned_s in
  Format.fprintf ppf "%d kernels, bound 6, %d reps@." (List.length ctxs) reps;
  Format.fprintf ppf "pruned     %.6fs/sweep@." pruned_s;
  Format.fprintf ppf "exhaustive %.6fs/sweep@." full_s;
  Format.fprintf ppf "choices identical: %b, speedup %.2fx@." agree speedup;
  ( reps * 2,
    [ ("pruned_s", pruned_s); ("full_s", full_s); ("speedup", speedup);
      ("agree", if agree then 1.0 else 0.0) ] )

(* ------------------------------------------------------------------ *)
(* Serve load generator: N in-process client domains against a live    *)
(* daemon on a temp socket.  Phase 1 sends all-distinct requests       *)
(* (unique problem sizes — every one a cache miss); phase 2 replays    *)
(* the identical set, so a healthy cache answers it without touching   *)
(* the analysis pipeline.  The gate metric is [warm_over_cold] >= 2.   *)

let serve_bench ppf =
  let open Ujam_serve in
  let path = Filename.temp_file "ujam_bench_serve" ".sock" in
  Sys.remove path;
  let cfg =
    { (Serve.default_config ()) with Serve.domains = 2; Serve.quiet = true }
  in
  let server = Domain.spawn (fun () -> Serve.run ~listen:path cfg) in
  let n_clients = 4 and per_client = 24 in
  let kernels =
    [| "mmjik"; "mmjki"; "jacobi"; "sor"; "afold"; "shal"; "dmxpy0"; "dmxpy1" |]
  in
  let request ci i =
    let k = kernels.((ci + i) mod Array.length kernels) in
    (* a unique problem size per (client, index) keeps phase 1 all-miss *)
    let n = 8 + (ci * per_client) + i in
    Json.Obj
      [ ("id", Json.Int i);
        ("method", Json.Str "optimize");
        ("params", Json.Obj [ ("kernel", Json.Str k); ("n", Json.Int n) ]) ]
  in
  let phase () =
    let t0 = Unix.gettimeofday () in
    let workers =
      Array.init n_clients (fun ci ->
          Domain.spawn (fun () ->
              let c = Serve.Client.connect path in
              let lats = Array.make per_client 0.0 in
              for i = 0 to per_client - 1 do
                let t = Unix.gettimeofday () in
                ignore (Serve.Client.request c (request ci i));
                lats.(i) <- Unix.gettimeofday () -. t
              done;
              Serve.Client.close c;
              lats))
    in
    let lats = Array.concat (Array.to_list (Array.map Domain.join workers)) in
    let wall = Unix.gettimeofday () -. t0 in
    (wall, lats)
  in
  let cold_wall, cold_lats = phase () in
  let warm_wall, warm_lats = phase () in
  let shutdown = Serve.Client.connect path in
  ignore
    (Serve.Client.request shutdown
       (Json.Obj [ ("id", Json.Str "bye"); ("method", Json.Str "shutdown") ]));
  Serve.Client.close shutdown;
  let summary = Domain.join server in
  let total = n_clients * per_client in
  let rps wall = float_of_int total /. Float.max 1e-9 wall in
  let p99 lats =
    let s = Array.copy lats in
    Array.sort compare s;
    let i = min (Array.length s - 1) (int_of_float (ceil (0.99 *. float_of_int (Array.length s))) - 1) in
    1000.0 *. s.(max 0 i)
  in
  let hit_rate =
    float_of_int summary.Serve.hits
    /. Float.max 1.0 (float_of_int (summary.Serve.hits + summary.Serve.misses))
  in
  let warm_over_cold = rps warm_wall /. Float.max 1e-9 (rps cold_wall) in
  Format.fprintf ppf
    "%d clients x %d requests per phase, %d server domains, cache %d entries@."
    n_clients per_client cfg.Serve.domains cfg.Serve.cache_size;
  Format.fprintf ppf "cold (all distinct): %.3fs  %.0f req/s  p99 %.2f ms@."
    cold_wall (rps cold_wall) (p99 cold_lats);
  Format.fprintf ppf "warm (replayed):     %.3fs  %.0f req/s  p99 %.2f ms@."
    warm_wall (rps warm_wall) (p99 warm_lats);
  Format.fprintf ppf
    "warm/cold throughput %.1fx; cache hit rate %.2f (%d hits, %d misses, %d evictions)@."
    warm_over_cold hit_rate summary.Serve.hits summary.Serve.misses
    summary.Serve.evictions;
  ( 2 * total,
    [ ("cold_rps", rps cold_wall);
      ("warm_rps", rps warm_wall);
      ("warm_over_cold", warm_over_cold);
      ("hit_rate", hit_rate);
      ("p99_cold_ms", p99 cold_lats);
      ("p99_warm_ms", p99 warm_lats) ] )

(* ------------------------------------------------------------------ *)
(* Native ground truth: emit, compile, and run four kernels through the
   host OCaml toolchain in one program; measure the real speedup of the
   engine-chosen unroll vector over (1,...,1) and validate every
   variant's checksums against the reference interpreter.  Gated behind
   an explicit "native" / "--native" request so the default trajectory
   (and the @bench-compare gate) never depends on a toolchain being
   present; without one the experiment degrades to a skip line. *)

let native_bench ppf =
  match Ujam_native.Toolchain.find () with
  | Error msg ->
      Format.fprintf ppf "native: skipped -- %s@." msg;
      (0, [ ("available", 0.0) ])
  | Ok tc -> (
      let machine = Ujam_machine.Presets.alpha in
      let kernels = [ "mmjki"; "dmxpy0"; "jacobi"; "sor" ] in
      let cases =
        List.map
          (fun k ->
            let e = Option.get (Ujam_kernels.Catalogue.find k) in
            let nest = e.Ujam_kernels.Catalogue.build ~n:48 () in
            let r = Driver.optimize ~bound:8 ~cache:true ~machine nest in
            let u =
              Ujam_ir.Unroll.clamp_divisible nest r.Driver.choice.Search.u
            in
            let spec =
              { Ujam_native.Emit.uname = k;
                seed = !seed;
                repeats = 5;
                variants =
                  [ { Ujam_native.Emit.vname = "orig"; nest };
                    { Ujam_native.Emit.vname = "unrolled";
                      nest = Ujam_ir.Unroll.unroll_and_jam nest u } ] }
            in
            (k, u, spec))
          kernels
      in
      let specs = List.map (fun (_, _, s) -> s) cases in
      match Ujam_native.Native.run_units tc specs with
      | Error msg ->
          Format.fprintf ppf "native: FAILED -- %s@." msg;
          (0, [ ("available", 1.0); ("failed", 1.0) ])
      | Ok results ->
          Format.fprintf ppf "toolchain: %s@.@."
            (Ujam_native.Toolchain.description tc);
          Format.fprintf ppf "%-8s %-10s %-12s %-12s %-8s %s@." "kernel" "u"
            "orig s/run" "unrolled" "speedup" "equiv";
          let metrics =
            List.map2
              (fun (k, u, spec) res ->
                let sec v =
                  match
                    List.find_opt
                      (fun (o : Ujam_native.Native.outcome) ->
                        String.equal o.Ujam_native.Native.vname v)
                      res.Ujam_native.Native.outcomes
                  with
                  | Some o -> o.Ujam_native.Native.seconds
                  | None -> Float.nan
                in
                let t0 = sec "orig" and t1 = sec "unrolled" in
                let speedup =
                  if t1 > 0.0 && Float.is_finite t0 then t0 /. t1 else 1.0
                in
                let eqs = Ujam_native.Native.equivalences spec res in
                let equiv =
                  List.for_all
                    (fun (e : Ujam_native.Native.equivalence) ->
                      e.Ujam_native.Native.diffs = [])
                    eqs
                in
                Format.fprintf ppf "%-8s %-10s %-12.3e %-12.3e %-8.2f %s@." k
                  (Vec.to_string u) t0 t1 speedup
                  (if equiv then "ok" else "FAILED");
                [ ("speedup_" ^ k, speedup);
                  ("equiv_" ^ k, if equiv then 1.0 else 0.0) ])
              cases results
          in
          (2 * List.length cases, ("available", 1.0) :: List.concat metrics))

(* ------------------------------------------------------------------ *)
(* The static miss-ratio predictor: accuracy against the hierarchy     *)
(* simulator on a seeded corpus, and the closed form's speed advantage *)
(* over full trace replay.                                             *)

let reuse_bench ppf =
  let count = 120 in
  let routines = Ujam_workload.Generator.corpus ~seed:!seed ~count () in
  let nests =
    List.concat_map (fun r -> r.Ujam_workload.Generator.nests) routines
  in
  let metrics = ref [] in
  let items = ref 0 in
  Format.fprintf ppf "%-22s %-8s %-10s %-10s %-10s %-12s %s@." "machine"
    "levels" "mean|err|" "max|err|" "flagged" "predict" "replay";
  List.iter
    (fun (machine : Ujam_machine.Machine.t) ->
      let levels = ref 0
      and flagged = ref 0
      and err_sum = ref 0.0
      and err_max = ref 0.0
      and t_predict = ref 0.0
      and t_replay = ref 0.0
      and compared = ref 0 in
      List.iter
        (fun nest ->
          match Ujam_ir.Nest.iterations nest with
          | None -> ()
          | Some iters ->
              let accesses =
                iters * List.length (Ujam_ir.Site.of_nest nest)
              in
              if accesses > 0 && accesses <= 200_000 then (
                let t0 = Unix.gettimeofday () in
                let report = Ujam_analysis.Cachecheck.run ~machine nest in
                t_predict := !t_predict +. (Unix.gettimeofday () -. t0);
                match report with
                | None -> ()
                | Some t ->
                    let t0 = Unix.gettimeofday () in
                    let stats = Ujam_sim.Runner.run_levels ~machine nest in
                    t_replay := !t_replay +. (Unix.gettimeofday () -. t0);
                    let out = Ujam_oracle.Cachepred.check ~machine nest in
                    levels := !levels + out.Ujam_oracle.Cachepred.levels_checked;
                    flagged :=
                      !flagged
                      + List.length out.Ujam_oracle.Cachepred.mismatches;
                    incr compared;
                    List.iter2
                      (fun (_, _, p, _) (_, acc, miss) ->
                        let m = float_of_int miss /. float_of_int acc in
                        let e = Float.abs (p -. m) in
                        err_sum := !err_sum +. e;
                        err_max := Float.max !err_max e)
                      (Ujam_analysis.Cachecheck.predicted_ratios t)
                      stats))
        nests;
      items := !items + !levels;
      let n_lv = float_of_int (List.length (Ujam_machine.Machine.effective_levels machine)) in
      let per ns = ns /. Float.max 1.0 (float_of_int !compared) *. 1e6 in
      let mean =
        !err_sum /. Float.max 1.0 (float_of_int !compared *. n_lv)
      in
      Format.fprintf ppf "%-22s %-8d %-10.4f %-10.4f %-10d %-12s %s@."
        machine.Ujam_machine.Machine.name !levels mean !err_max !flagged
        (Printf.sprintf "%.0fus/nest" (per !t_predict))
        (Printf.sprintf "%.0fus/nest" (per !t_replay));
      let key suffix = machine.Ujam_machine.Machine.name ^ "_" ^ suffix in
      metrics :=
        [ (key "levels", float_of_int !levels);
          (key "mean_abs_err", mean);
          (key "max_abs_err", !err_max);
          (key "flagged", float_of_int !flagged);
          (key "predict_us_per_nest", per !t_predict);
          (key "replay_us_per_nest", per !t_replay) ]
        @ !metrics)
    Ujam_machine.Presets.[ alpha_mem; hppa_mem ];
  (!items, List.rev !metrics)

(* ------------------------------------------------------------------ *)
(* Experiment registry, runner, and JSON trajectory.                   *)

let experiments =
  [ ("table1", "Table 1 — percentage of input dependences (Sec. 5.1)", table1);
    ("table2", "Table 2 — description of test loops", table2);
    ("fig8", "Figure 8 — performance of test loops on DEC Alpha", fig8);
    ("fig9", "Figure 9 — performance of test loops on HP PA-RISC", fig9);
    ( "ablation-model",
      "Ablation A1 — UGS tables vs dependence-based model (Sec. 5.2)",
      ablation_model );
    ( "ablation-brute",
      "Ablation A2 — analysis cost: tables vs brute force (Sec. 5.3)",
      ablation_brute );
    ( "ablation-prefetch",
      "Ablation A3 — prefetch-issue bandwidth sweep",
      ablation_prefetch );
    ( "ablation-permute",
      "Ablation A4 — permutation pre-pass (Wolf–Maydan–Chen setting)",
      ablation_permute );
    ( "ablation-registers",
      "Ablation A5 — register-file size sweep (future work, Sec. 6)",
      ablation_registers );
    ( "corpus",
      "Engine.run_corpus throughput (synthetic corpus, bound 4)",
      corpus_throughput );
    ( "table-build",
      "Sweep-built exact tables vs per-cell reference (bound-8 space)",
      table_build );
    ( "search",
      "Pruned vs exhaustive unroll search (catalogue, bound 6)",
      search_bench );
    ( "serve",
      "Serve daemon load generator (4 clients, cold vs warm cache)",
      serve_bench );
    ( "native",
      "Native ground truth — compiled-kernel speedup of the chosen unroll",
      native_bench );
    ( "hashcons",
      "Hash-consed IR — sharing ratio and O(1) memoized canonical digest",
      hashcons_bench );
    ( "reuse",
      "Static miss-ratio predictor — accuracy and speed vs. trace replay",
      reuse_bench );
    ( "quick-matrix",
      "Quick smoke — strategy matrix (shared context per kernel)",
      quick_matrix );
    ( "quick-corpus",
      "Quick smoke — engine corpus (20 routines, 2 domains)",
      quick_corpus );
    ("speed", "Bechamel micro-benchmarks", speed) ]

let all_names =
  [ "table1"; "table2"; "fig8"; "fig9"; "ablation-model"; "ablation-brute";
    "ablation-prefetch"; "ablation-permute"; "ablation-registers"; "corpus";
    "table-build"; "search"; "serve"; "hashcons"; "reuse"; "speed" ]

let run_experiment name =
  let _, title, f =
    List.find (fun (n, _, _) -> String.equal n name) experiments
  in
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let items, metrics = f ppf in
  Format.pp_print_flush ppf ();
  let wall_s = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  (* major_words includes promotions; subtracting them leaves direct
     major allocations, so minor + major here never double-counts *)
  { name;
    title;
    wall_s;
    items;
    minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
    major_words =
      g1.Gc.major_words -. g0.Gc.major_words
      -. (g1.Gc.promoted_words -. g0.Gc.promoted_words);
    metrics;
    body = Buffer.contents buf }

let section title =
  Format.printf "@.=============================================================@.";
  Format.printf "%s@." title;
  Format.printf "=============================================================@."

let print_report r =
  section r.title;
  print_string r.body

let report_to_json r =
  Json.Obj
    [ ("name", Json.Str r.name);
      ("wall_s", Json.Float r.wall_s);
      ("items", Json.Int r.items);
      ("throughput", Json.Float (throughput r));
      ("minor_words", Json.Float r.minor_words);
      ("major_words", Json.Float r.major_words);
      ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.metrics))
    ]

let trajectory_to_json reports =
  Json.Obj
    [ ("schema_version", Json.Int schema_version);
      ("bench", Json.Int bench_generation);
      ("seed", Json.Int !seed);
      ("experiments", Json.List (List.map report_to_json reports)) ]

(* ------------------------------------------------------------------ *)
(* --compare: the regression gate over two trajectory files.           *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_trajectory path =
  let content =
    try read_file path
    with Sys_error e ->
      Format.eprintf "compare: cannot read %s: %s@." path e;
      exit 2
  in
  match Json.of_string content with
  | Error e ->
      Format.eprintf "compare: %s is not valid JSON: %s@." path e;
      exit 2
  | Ok json ->
      (match Json.member "schema_version" json with
      | Some (Json.Int v) when v = schema_version -> ()
      | Some (Json.Int v) ->
          Format.eprintf "compare: %s has schema_version %d, expected %d@." path
            v schema_version;
          exit 2
      | _ ->
          Format.eprintf "compare: %s lacks a schema_version field@." path;
          exit 2);
      (match Json.member "experiments" json with
      | Some (Json.List l) ->
          List.filter_map
            (fun e ->
              match (Json.member "name" e, Json.member "throughput" e) with
              | Some (Json.Str n), Some v ->
                  Option.map
                    (fun f ->
                      (* allocation fields arrived in bench generation 7:
                         older trajectories simply lack them, and the
                         allocation gate skips such pairs *)
                      let words field =
                        Option.bind (Json.member field e) Json.to_float_opt
                      in
                      let alloc =
                        match (words "minor_words", words "major_words") with
                        | Some mi, Some ma -> Some (mi +. ma)
                        | _ -> None
                      in
                      (n, (f, alloc)))
                    (Json.to_float_opt v)
              | _ -> None)
            l
      | _ ->
          Format.eprintf "compare: %s lacks an experiments list@." path;
          exit 2)

let compare_trajectories old_path new_path threshold alloc_threshold =
  let old_t = load_trajectory old_path in
  let new_t = load_trajectory new_path in
  let failed = ref false in
  List.iter
    (fun (name, (old_tp, old_alloc)) ->
      match List.assoc_opt name new_t with
      | None ->
          failed := true;
          Format.printf "%-20s %.1f -> MISSING  REGRESSION@." name old_tp
      | Some (new_tp, new_alloc) ->
          let delta = (new_tp -. old_tp) /. Float.max 1e-9 old_tp in
          let regressed = delta < -.threshold in
          if regressed then failed := true;
          let alloc_note =
            match (old_alloc, new_alloc) with
            | Some ow, Some nw ->
                let adelta = (nw -. ow) /. Float.max 1e-9 ow in
                let aregressed = adelta > alloc_threshold in
                if aregressed then failed := true;
                Printf.sprintf ", alloc %+.1f%% %s" (100.0 *. adelta)
                  (if aregressed then "ALLOC-REGRESSION" else "ok")
            | _ -> ""
          in
          Format.printf "%-20s %.1f -> %.1f items/s (%+.1f%%)  %s%s@." name
            old_tp new_tp (100.0 *. delta)
            (if regressed then "REGRESSION" else "OK")
            alloc_note)
    old_t;
  if !failed then begin
    Format.printf
      "compare: regression beyond thresholds (throughput %.0f%%, alloc %.0f%%)@."
      (100.0 *. threshold)
      (100.0 *. alloc_threshold);
    exit 1
  end
  else
    Format.printf
      "compare: no regression beyond thresholds (throughput %.0f%%, alloc %.0f%%)@."
      (100.0 *. threshold)
      (100.0 *. alloc_threshold)

(* ------------------------------------------------------------------ *)
(* Argument parsing and dispatch.                                      *)

let json_mode = ref false
let native_mode = ref false
let out_file = ref (Printf.sprintf "BENCH_%d.json" bench_generation)
let threshold = ref 0.10

(* Allocation varies less than wall time between runs, but fresh code
   paths legitimately shift it; 25% headroom flags order-of-magnitude
   leaks without tripping on noise. *)
let alloc_threshold = ref 0.25
let compare_files = ref None

let usage () =
  Format.eprintf
    "usage: bench [EXPERIMENT...] [--quick] [--native] [--seed S] [--json] [--out FILE]@.\
    \       bench --compare OLD.json NEW.json [--threshold T] [--alloc-threshold T]@.\
     experiments: table1 table2 fig8 fig9 ablation-model ablation-brute@.\
    \             ablation-prefetch ablation-permute ablation-registers@.\
    \             corpus table-build search serve native speed hashcons reuse@.\
    \             quick-matrix quick-corpus all@.\
     `all' excludes `native' (needs a host OCaml toolchain); add it with@.\
    \ --native or by naming it explicitly.@.";
  exit 2

(* Strip global options out of the argument list before dispatching. *)
let rec extract_options = function
  | [] -> []
  | "--seed" :: v :: rest ->
      (match int_of_string_opt v with
      | Some s -> seed := s
      | None ->
          Format.eprintf "--seed: expected an integer, got %S@." v;
          exit 2);
      extract_options rest
  | "--json" :: rest ->
      json_mode := true;
      extract_options rest
  | "--native" :: rest ->
      native_mode := true;
      extract_options rest
  | "--out" :: v :: rest ->
      out_file := v;
      extract_options rest
  | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> threshold := t
      | _ ->
          Format.eprintf "--threshold: expected a non-negative float, got %S@." v;
          exit 2);
      extract_options rest
  | "--alloc-threshold" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> alloc_threshold := t
      | _ ->
          Format.eprintf
            "--alloc-threshold: expected a non-negative float, got %S@." v;
          exit 2);
      extract_options rest
  | "--compare" :: a :: b :: rest ->
      compare_files := Some (a, b);
      extract_options rest
  | arg :: rest -> arg :: extract_options rest

let names_of_arg = function
  | "--quick" | "quick" -> [ "quick-matrix"; "quick-corpus" ]
  | "all" -> all_names
  | name when List.exists (fun (n, _, _) -> String.equal n name) experiments ->
      [ name ]
  | other ->
      Format.eprintf "unknown experiment %S@." other;
      usage ()

let () =
  let args =
    match extract_options (Array.to_list Sys.argv) with
    | _ :: args -> args
    | [] -> []
  in
  match !compare_files with
  | Some (a, b) -> compare_trajectories a b !threshold !alloc_threshold
  | None ->
      let names =
        match args with [] -> all_names | args -> List.concat_map names_of_arg args
      in
      let names =
        if !native_mode && not (List.mem "native" names) then
          names @ [ "native" ]
        else names
      in
      let reports = List.map run_experiment names in
      if !json_mode then begin
        let oc = open_out !out_file in
        output_string oc (Json.to_string (trajectory_to_json reports));
        output_string oc "\n";
        close_out oc;
        Format.printf "wrote %s (%d experiments, schema v%d)@." !out_file
          (List.length reports) schema_version
      end
      else List.iter print_report reports
