(* ujc — unroll-and-jam compiler driver.

   Subcommands expose each stage of the pipeline on the kernel suite:
   list/show the kernels, analyze reuse, build the unroll tables,
   optimize (choose unroll amounts and transform), and simulate. *)

open Cmdliner
open Ujam_linalg
open Ujam_core
open Ujam_engine
module Obs = Ujam_obs.Obs

let machine_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "alpha" -> Ok Ujam_machine.Presets.alpha
    | "hppa" | "pa-risc" -> Ok Ujam_machine.Presets.hppa
    | "alpha-mem" | "alpha_mem" -> Ok Ujam_machine.Presets.alpha_mem
    | "hppa-mem" | "hppa_mem" -> Ok Ujam_machine.Presets.hppa_mem
    | "generic" -> Ok (Ujam_machine.Presets.generic ())
    | _ ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown machine %S (alpha|hppa|alpha-mem|hppa-mem|generic)" s))
  in
  let print ppf (m : Ujam_machine.Machine.t) =
    Format.pp_print_string ppf m.Ujam_machine.Machine.name
  in
  Arg.conv (parse, print)

let machine_arg =
  Arg.(
    value
    & opt machine_conv Ujam_machine.Presets.alpha
    & info [ "m"; "machine" ] ~docv:"MACHINE"
        ~doc:"Target machine (alpha, hppa, alpha-mem, hppa-mem, generic).")

let size_arg =
  Arg.(value & opt (some int) None & info [ "n"; "size" ] ~docv:"N" ~doc:"Problem size.")

let bound_arg =
  Arg.(
    value & opt int 8
    & info [ "b"; "bound" ] ~docv:"B" ~doc:"Unroll-space bound per loop.")

let cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Use the all-hits balance model of Carr-Kennedy.")

let level_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "level" ] ~docv:"K"
        ~doc:"Hierarchy level (1-based).  $(b,optimize) prices the balance at             level K (the ugs-lK model); $(b,lint)/$(b,explain) restrict the             predicted miss profile to level K.")

let model_conv =
  let parse s =
    match Model.find s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown model %S (%s)" s
               (String.concat "|" Model.names)))
  in
  let print ppf m = Format.pp_print_string ppf (Model.name m) in
  Arg.conv (parse, print)

let model_arg =
  Arg.(
    value
    & opt model_conv (module Model.Ugs_tables : Model.MODEL)
    & info [ "model" ] ~docv:"MODEL"
        ~doc:"Selection strategy: ugs, dep, brute, no-cache, ugs-l2.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D" ~doc:"Parallel domains for batch runs.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

let seq_arg =
  Arg.(
    value & flag
    & info [ "seq" ]
        ~doc:"Search short verified skew/retime prefixes that legalize             fenced unroll space before the unroll search; report the             chosen sequence and why each step was legal.")

let timings_arg =
  Arg.(
    value & flag
    & info [ "timings" ]
        ~doc:"Report per-stage analysis timings (graph/tables/search/sim).")

(* --no-cache is sugar for the no-cache strategy on engine-backed paths. *)
let effective_model no_cache model =
  if no_cache then (module Model.No_cache : Model.MODEL) else model

let kernel_arg =
  let parse s =
    match Ujam_kernels.Catalogue.find s with
    | Some e -> Ok e
    | None -> (
        match List.assoc_opt s Ujam_kernels.Extras.all with
        | Some build ->
            Ok
              { Ujam_kernels.Catalogue.num = 0; name = s;
                description = "extra kernel";
                build = (fun ?n () -> build ?n ()) }
        | None ->
            Error (`Msg (Printf.sprintf "unknown kernel %S; see `ujc list'" s)))
  in
  let print ppf (e : Ujam_kernels.Catalogue.entry) =
    Format.pp_print_string ppf e.Ujam_kernels.Catalogue.name
  in
  Arg.(
    required
    & pos 0 (some (conv (parse, print))) None
    & info [] ~docv:"KERNEL" ~doc:"Kernel name from Table 2 (see `ujc list').")

let build (e : Ujam_kernels.Catalogue.entry) n =
  match n with
  | Some n -> e.Ujam_kernels.Catalogue.build ~n ()
  | None -> e.Ujam_kernels.Catalogue.build ()

let list_cmd =
  let run () =
    Format.printf "%a@." Ujam_kernels.Catalogue.pp_table ();
    Format.printf "extras: %s@."
      (String.concat ", " (List.map fst Ujam_kernels.Extras.all))
  in
  Cmd.v (Cmd.info "list" ~doc:"List the 19 evaluation loops (Table 2).")
    Term.(const run $ const ())

let show_cmd =
  let run e n = Format.printf "%a@." Ujam_ir.Nest.pp (build e n) in
  Cmd.v (Cmd.info "show" ~doc:"Print a kernel as Fortran-style source.")
    Term.(const run $ kernel_arg $ size_arg)

let analyze_cmd =
  let run e n (machine : Ujam_machine.Machine.t) json =
    let nest = build e n in
    let ctx = Analysis_ctx.create ~machine nest in
    let d = Ujam_ir.Nest.depth nest in
    let localized = Subspace.span_dims ~dim:d [ d - 1 ] in
    let line = machine.Ujam_machine.Machine.cache_line in
    let vn = Ujam_ir.Nest.var_name nest in
    let groups = Analysis_ctx.ugs ctx in
    let costs =
      List.map (Ujam_reuse.Locality.ugs_cost ~line ~localized) groups
    in
    let with_input = Analysis_ctx.graph_with_input ctx in
    let without = Analysis_ctx.graph ctx in
    let stats = Ujam_depend.Stats.of_graph with_input in
    let ranking = Analysis_ctx.ranked ctx in
    if json then begin
      let stream_name = function
        | Ujam_reuse.Locality.Invariant -> "invariant"
        | Ujam_reuse.Locality.Unit_stride -> "unit-stride"
        | Ujam_reuse.Locality.No_reuse -> "no-reuse"
      in
      let group_json (c : Ujam_reuse.Locality.ugs_cost) =
        Json.Obj
          [ ("base", Json.Str c.Ujam_reuse.Locality.ugs.Ujam_reuse.Ugs.base);
            ("size",
             Json.Int
               (List.length c.Ujam_reuse.Locality.ugs.Ujam_reuse.Ugs.members));
            ("stream", Json.Str (stream_name c.Ujam_reuse.Locality.stream));
            ("g_t", Json.Int c.Ujam_reuse.Locality.g_t);
            ("g_s", Json.Int c.Ujam_reuse.Locality.g_s);
            ("accesses_per_iter", Json.Float c.Ujam_reuse.Locality.accesses) ]
      in
      print_endline
        (Json.to_string
           (Json.Obj
              [ ("kernel", Json.Str (Ujam_ir.Nest.name nest));
                ("machine", Json.Str machine.Ujam_machine.Machine.name);
                ("groups", Json.List (List.map group_json costs));
                ("dependences",
                 Json.Obj
                   [ ("flow", Json.Int stats.Ujam_depend.Stats.flow);
                     ("anti", Json.Int stats.Ujam_depend.Stats.anti);
                     ("output", Json.Int stats.Ujam_depend.Stats.output);
                     ("input", Json.Int stats.Ujam_depend.Stats.input);
                     ("edges_with_input",
                      Json.Int (List.length with_input.Ujam_depend.Graph.edges));
                     ("edges_without_input",
                      Json.Int (List.length without.Ujam_depend.Graph.edges)) ]);
                ("ranking",
                 Json.List
                   (List.map
                      (fun (l, c) ->
                        Json.Obj
                          [ ("level", Json.Int l); ("var", Json.Str (vn l));
                            ("accesses_per_iter", Json.Float c) ])
                      ranking)) ]))
    end
    else begin
      Format.printf "%a@.@." Ujam_ir.Nest.pp nest;
      List.iter
        (fun (cost : Ujam_reuse.Locality.ugs_cost) ->
          Format.printf "%a@,  stream: %a, g_T=%d, g_S=%d, accesses/iter=%.3f@."
            (Ujam_reuse.Ugs.pp ~var_name:vn) cost.Ujam_reuse.Locality.ugs
            Ujam_reuse.Locality.pp_stream cost.Ujam_reuse.Locality.stream
            cost.Ujam_reuse.Locality.g_t cost.Ujam_reuse.Locality.g_s
            cost.Ujam_reuse.Locality.accesses)
        costs;
      Format.printf "@.dependences (with input): %a@." Ujam_depend.Stats.pp stats;
      Format.printf "dependence graph: %d edges with input, %d without (%.0f%% saved)@."
        (List.length with_input.Ujam_depend.Graph.edges)
        (List.length without.Ujam_depend.Graph.edges)
        (100.0
        *. (1.0
           -. (float_of_int (List.length without.Ujam_depend.Graph.edges)
              /. float_of_int (max 1 (List.length with_input.Ujam_depend.Graph.edges)))));
      Format.printf "locality ranking (level, accesses/iter): %s@."
        (String.concat ", "
           (List.map (fun (l, c) -> Printf.sprintf "%s:%.3f" (vn l) c) ranking))
    end
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Reuse and dependence analysis of a kernel.")
    Term.(const run $ kernel_arg $ size_arg $ machine_arg $ json_arg)

let tables_cmd =
  let run e n bound =
    let nest = build e n in
    let d = Ujam_ir.Nest.depth nest in
    let localized = Subspace.span_dims ~dim:d [ d - 1 ] in
    let bounds = Array.make d bound in
    bounds.(d - 1) <- 0;
    let space = Unroll_space.make ~bounds in
    let mem = Rrs.memory_table space ~localized nest in
    let reg = Rrs.register_table space ~localized nest in
    Format.printf "u          V_M  R    g_T  g_S@.";
    Unroll_space.iter space (fun u ->
        let gt =
          List.fold_left
            (fun acc g -> acc + Tables.gts_exact space ~localized g u)
            0 (Ujam_reuse.Ugs.of_nest nest)
        in
        let gs =
          List.fold_left
            (fun acc g -> acc + Tables.gss_exact space ~localized g u)
            0 (Ujam_reuse.Ugs.of_nest nest)
        in
        Format.printf "%-10s %-4d %-4d %-4d %-4d@." (Vec.to_string u)
          (Unroll_space.Table.get mem u)
          (Unroll_space.Table.get reg u)
          gt gs)
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Print the precomputed unroll tables of a kernel.")
    Term.(const run $ kernel_arg $ size_arg $ bound_arg)

let print_corpus_report ~json ~timings report =
  if json then print_endline (Json.to_string (Engine.to_json ~timings report))
  else begin
    Format.printf "%a@." Engine.pp report;
    if timings then Format.printf "%a@." Engine.pp_timings report
  end

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"Exit 1 if any nest fails analysis (the CI smoke gate).")

let optimize_cmd =
  let kernel_opt_arg =
    let parse s =
      match Ujam_kernels.Catalogue.find s with
      | Some e -> Ok e
      | None -> (
          match List.assoc_opt s Ujam_kernels.Extras.all with
          | Some build ->
              Ok
                { Ujam_kernels.Catalogue.num = 0; name = s;
                  description = "extra kernel";
                  build = (fun ?n () -> build ?n ()) }
          | None ->
              Error (`Msg (Printf.sprintf "unknown kernel %S; see `ujc list'" s)))
    in
    let print ppf (e : Ujam_kernels.Catalogue.entry) =
      Format.pp_print_string ppf e.Ujam_kernels.Catalogue.name
    in
    Arg.(
      value
      & pos 0 (some (conv (parse, print))) None
      & info [] ~docv:"KERNEL"
          ~doc:"Kernel name from Table 2 (omit with $(b,--all)).")
  in
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Optimize every Table-2 kernel through the engine.")
  in
  let native_check_flag =
    Arg.(
      value & flag
      & info [ "native-check" ]
          ~doc:"After optimizing, compile and run the original nest and the               chosen unroll with the host OCaml toolchain: validate both               against the reference interpreter and measure the actual               speedup over (1,...,1).  Exits 2 when no toolchain is on               PATH, 1 when the compiled run diverges from the               interpreter.")
  in
  let run e_opt n machine bound no_cache model all domains json timings seq
      check native_check level =
    let model =
      match level with
      | Some k -> Model.at_level k
      | None -> effective_model no_cache model
    in
    let tc_opt =
      if not native_check then None
      else
        match Ujam_native.Toolchain.find () with
        | Ok tc -> Some tc
        | Error msg ->
            Format.eprintf
              "ujc optimize: --native-check needs a native toolchain: %s@." msg;
            exit 2
    in
    if native_check && json then begin
      Format.eprintf "ujc optimize: --native-check has no --json form yet@.";
      exit 2
    end;
    let run_native_check tc r =
      match Ujam_native.Native.check_choice tc r with
      | Error err ->
          Format.eprintf "native check: %a@." Ujam_engine.Error.pp err;
          exit 1
      | Ok c ->
          Format.printf "native check: u = %a%s %s (max rel err %.3g)@."
            Vec.pp c.Ujam_native.Native.u
            (if c.Ujam_native.Native.clamped then " (clamped to divisible)"
             else "")
            (if c.Ujam_native.Native.equivalent then
               "matches the interpreter"
             else "DIVERGES from the interpreter")
            c.Ujam_native.Native.max_rel_err;
          Format.printf
            "native timing: original %.3e s, transformed %.3e s, measured \
             speedup %.2fx@."
            c.Ujam_native.Native.seconds_original
            c.Ujam_native.Native.seconds_transformed
            c.Ujam_native.Native.measured_speedup;
          if c.Ujam_native.Native.measured_speedup < 1.0 then
            Format.printf
              "native timing: warning: chosen vector did not beat (1,...,1) \
               on this host@.";
          if not c.Ujam_native.Native.equivalent then exit 1
    in
    if all then begin
      if native_check then begin
        Format.eprintf
          "ujc optimize: --native-check works on a single kernel, not --all@.";
        exit 2
      end;
      let report =
        Engine.run_corpus ~domains ~bound ~model ~seq ~machine
          (Engine.routines_of_catalogue ?n ())
      in
      print_corpus_report ~json ~timings report;
      if check && report.Engine.failed > 0 then exit 1
    end
    else
      match e_opt with
      | None ->
          Format.eprintf "ujc optimize: missing KERNEL argument (or pass --all)@.";
          exit 2
      | Some e -> (
          let nest = build e n in
          let mname = Model.name model in
          if json then
            let outcome =
              Engine.analyze ~bound ~model ~seq ~machine
                ~routine:e.Ujam_kernels.Catalogue.name nest
            in
            print_endline
              (Json.to_string
                 (Json.Obj
                    [ ("kernel", Json.Str e.Ujam_kernels.Catalogue.name);
                      ("machine",
                       Json.Str machine.Ujam_machine.Machine.name);
                      ("result", Engine.nest_outcome_to_json outcome) ]))
          else
            match mname with
            | ("ugs" | "no-cache") when not seq ->
                let r =
                  Driver.optimize ~bound ~cache:(mname = "ugs") ~machine nest
                in
                Format.printf "%a@.@." Driver.pp r;
                Format.printf "--- transformed ---@.%a@.@." Ujam_ir.Nest.pp
                  r.Driver.transformed;
                Format.printf "--- after scalar replacement ---@.%a@."
                  Ujam_ir.Nest.pp
                  (Scalar_replace.apply r.Driver.transformed r.Driver.plan);
                Option.iter (fun tc -> run_native_check tc r) tc_opt
            | _ ->
                if native_check then begin
                  Format.eprintf
                    "ujc optimize: --native-check needs the ugs or no-cache \
                     model without --seq@.";
                  exit 2
                end;
                let outcome =
                  Engine.analyze ~bound ~model ~seq ~machine
                    ~routine:e.Ujam_kernels.Catalogue.name nest
                in
                Format.printf "%a@." Engine.pp_nest_outcome outcome)
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Choose unroll amounts, transform, and scalar-replace a kernel              (or batch-optimize the whole catalogue with $(b,--all)).")
    Term.(const run $ kernel_opt_arg $ size_arg $ machine_arg $ bound_arg
          $ cache_arg $ model_arg $ all_flag $ domains_arg $ json_arg
          $ timings_arg $ seq_arg $ check_arg $ native_check_flag $ level_arg)

let simulate_cmd =
  let run e n machine bound no_cache =
    let nest = build e n in
    let r = Driver.optimize ~bound ~cache:(not no_cache) ~machine nest in
    let s0 = Ujam_sim.Runner.run ~machine nest in
    let s1 = Ujam_sim.Runner.run ~machine ~plan:r.Driver.plan r.Driver.transformed in
    Format.printf "machine: %a@." Ujam_machine.Machine.pp machine;
    Format.printf "original:    %a@." Ujam_sim.Runner.pp s0;
    Format.printf "transformed: %a (u = %a)@." Ujam_sim.Runner.pp s1 Vec.pp
      r.Driver.choice.Search.u;
    Format.printf "normalized execution time: %.3f@."
      (Ujam_sim.Runner.normalized ~baseline:s0 s1)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate a kernel before and after optimization.")
    Term.(const run $ kernel_arg $ size_arg $ machine_arg $ bound_arg $ cache_arg)

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Loop nest in the Fortran-style syntax (see `ujc show').")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_file path =
  match Ujam_ir.Parse.nest ~name:(Filename.remove_extension (Filename.basename path))
          (read_file path)
  with
  | Ok nest -> nest
  | Error e ->
      Format.eprintf "%s: %a@." path Ujam_ir.Parse.pp_error e;
      exit 1

let compile_cmd =
  let run path machine bound no_cache permute =
    let nest = parse_file path in
    let nest, perm_note =
      if permute then begin
        let c = Permute.best_legal ~machine nest in
        ( c.Permute.permuted,
          Printf.sprintf "permutation [%s], Eq.1 cost %.3f -> %.3f"
            (String.concat ";"
               (Array.to_list (Array.map string_of_int c.Permute.permutation)))
            c.Permute.original_cost c.Permute.cost )
      end
      else (nest, "")
    in
    let r = Driver.optimize ~bound ~cache:(not no_cache) ~machine nest in
    if perm_note <> "" then Format.printf "%s@." perm_note;
    Format.printf "%a@.@." Driver.pp r;
    Format.printf "%a@." Ujam_ir.Nest.pp
      (Scalar_replace.apply r.Driver.transformed r.Driver.plan)
  in
  let permute_flag =
    Arg.(value & flag & info [ "permute" ] ~doc:"Run the loop-permutation pre-pass.")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Optimize a loop nest read from a file (parse, permute,              unroll-and-jam, scalar replace).")
    Term.(const run $ file_arg $ machine_arg $ bound_arg $ cache_arg $ permute_flag)

let fortran_cmd =
  let run e n machine bound no_cache transform =
    let nest = build e n in
    let out =
      if transform then begin
        let r = Driver.optimize ~bound ~cache:(not no_cache) ~machine nest in
        Scalar_replace.apply r.Driver.transformed r.Driver.plan
      end
      else nest
    in
    print_string (Ujam_sim.Codegen.to_program out)
  in
  let transform_flag =
    Arg.(value & flag & info [ "transform" ] ~doc:"Emit the optimized loop.")
  in
  Cmd.v
    (Cmd.info "fortran"
       ~doc:"Emit a runnable Fortran 77 program for a kernel (optionally              after optimization).")
    Term.(const run $ kernel_arg $ size_arg $ machine_arg $ bound_arg $ cache_arg
          $ transform_flag)

let graph_cmd =
  let dot_flag =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text.")
  in
  let input_flag =
    Arg.(
      value & flag
      & info [ "no-input" ]
          ~doc:"Exclude input (read-read) dependences, as the UGS model does.")
  in
  let run e n dot no_input =
    let nest = build e n in
    let g = Ujam_depend.Graph.build ~include_input:(not no_input) nest in
    if dot then print_string (Ujam_depend.Graph.to_dot g)
    else begin
      Format.printf "%a@." Ujam_depend.Graph.pp g;
      Format.printf "%a@." Ujam_depend.Stats.pp (Ujam_depend.Stats.of_graph g)
    end
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Print a kernel's dependence graph (optionally DOT).")
    Term.(const run $ kernel_arg $ size_arg $ dot_flag $ input_flag)

let verify_cmd =
  let run e n machine bound no_cache =
    let nest = build e n in
    let r = Driver.optimize ~bound ~cache:(not no_cache) ~machine nest in
    (* Clamp the chosen unroll amounts to factors dividing the trip
       counts: the remainder (cleanup) loop is outside the IR's perfect
       nests, so verification requires exact coverage. *)
    let u = Ujam_ir.Unroll.clamp_divisible nest r.Driver.choice.Search.u in
    let t = Ujam_ir.Unroll.unroll_and_jam nest u in
    let plan = Scalar_replace.plan t in
    let body = Scalar_replace.apply t plan in
    let pre = Scalar_replace.preheader t plan in
    let reference = Ujam_sim.Interp.run nest in
    let transformed = Ujam_sim.Interp.run ~preheader:(fun _ -> pre) body in
    let ok = Ujam_sim.Interp.equal reference transformed in
    Format.printf
      "%s: search chose u = %a, verified at u = %a@.interpreted checksums: original %.9f, transformed %.9f@.locations written: %d vs %d@.semantics %s@."
      (Ujam_ir.Nest.name nest) Vec.pp r.Driver.choice.Search.u Vec.pp u
      (Ujam_sim.Interp.checksum reference)
      (Ujam_sim.Interp.checksum transformed)
      (Ujam_sim.Interp.written reference)
      (Ujam_sim.Interp.written transformed)
      (if ok then "PRESERVED" else "BROKEN");
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Interpret a kernel before and after the full pipeline              (unroll-and-jam, scalar replacement, chain priming) and              compare the results element by element.")
    Term.(const run $ kernel_arg $ size_arg $ machine_arg $ bound_arg $ cache_arg)

let corpus_cmd =
  let count_arg =
    Arg.(value & opt int 1187 & info [ "count" ] ~docv:"N" ~doc:"Corpus size.")
  in
  let seed_arg =
    Arg.(value & opt int 1997 & info [ "seed" ] ~docv:"S" ~doc:"Generator seed.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print input-dependence statistics (Table 1) instead of               running the optimization pipeline.")
  in
  let corpus_bound_arg =
    Arg.(
      value & opt int 4
      & info [ "b"; "bound" ] ~docv:"B" ~doc:"Unroll-space bound per loop.")
  in
  let recurrent_flag =
    Arg.(
      value & flag
      & info [ "recurrent" ]
          ~doc:"Generate fence-binding recurrence nests (anti-diagonal and               cross-statement) instead of the corpus mix; combine with               $(b,--seq) to exercise the sequence legalizer.")
  in
  let dedup_flag =
    Arg.(
      value & flag
      & info [ "dedup" ]
          ~doc:"Analyze each canonically distinct nest once (content hash               over alpha-renamed, commutatively sorted structure) and               replay the outcome for its duplicates.")
  in
  let run count seed machine bound no_cache model domains json timings stats
      seq recurrent dedup check =
    let count = max 0 count in
    let routines =
      Ujam_workload.Generator.corpus ~seed ~recurrent ~count ()
    in
    if stats then
      Format.printf "%a@." Ujam_workload.Corpus.pp
        (Ujam_workload.Corpus.measure routines)
    else begin
      let model = effective_model no_cache model in
      let report =
        Engine.run_corpus ~domains ~bound ~model ~seq ~dedup ~machine routines
      in
      print_corpus_report ~json ~timings report;
      if check && report.Engine.failed > 0 then exit 1
    end
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:"Run the selection pipeline over a synthetic corpus              (per-routine reports; $(b,--stats) for the Table-1              input-dependence statistics).")
    Term.(const run $ count_arg $ seed_arg $ machine_arg $ corpus_bound_arg
          $ cache_arg $ model_arg $ domains_arg $ json_arg $ timings_arg
          $ stats_flag $ seq_arg $ recurrent_flag $ dedup_flag $ check_arg)

let fuzz_cmd =
  let open Ujam_oracle in
  let n_arg =
    Arg.(
      value & opt int 200
      & info [ "n"; "nests" ] ~docv:"N" ~doc:"Number of generated nests to check.")
  in
  let seed_arg =
    Arg.(value & opt int 1997 & info [ "seed" ] ~docv:"S" ~doc:"Generator seed.")
  in
  let max_depth_arg =
    Arg.(
      value & opt int 3
      & info [ "max-depth" ] ~docv:"D"
          ~doc:"Skip generated nests deeper than $(docv) loops.")
  in
  let fuzz_bound_arg =
    Arg.(
      value & opt int 4
      & info [ "b"; "bound" ] ~docv:"B" ~doc:"Unroll-space bound per loop.")
  in
  let deep_flag =
    Arg.(
      value & flag
      & info [ "deep-space" ]
          ~doc:"Stress the sweep engine on deep spaces: admit 4-deep               generated nests and raise the unroll bound to at least 8               and the depth limit to at least 4.")
  in
  let shrink_flag =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Shrink each failing nest to a minimal reproducer (drop               loops, drop references, shrink coefficients) and print it               as a rebuildable OCaml snippet.")
  in
  let layers_arg =
    let layer_conv =
      let parse s =
        match String.lowercase_ascii s with
        | "recount" -> Ok Fuzz.Recount
        | "sim" -> Ok Fuzz.Sim
        | "cross-model" | "cross" -> Ok Fuzz.Cross_model
        | "verify" -> Ok Fuzz.Verify
        | "cachepred" -> Ok Fuzz.Cachepred
        | "native" -> Ok Fuzz.Native
        | _ -> Error (`Msg (Printf.sprintf "unknown layer %S (recount|sim|cross-model|verify|cachepred|native)" s))
      in
      Arg.conv (parse, fun ppf l -> Format.pp_print_string ppf (Fuzz.layer_name l))
    in
    Arg.(
      value
      & opt (list layer_conv) Fuzz.all_layers
      & info [ "layers" ] ~docv:"LAYERS"
          ~doc:"Comma-separated oracle layers to run (recount, sim,               cross-model, verify, cachepred, native).")
  in
  let native_flag =
    Arg.(
      value & flag
      & info [ "native" ]
          ~doc:"Add the native ground-truth layer: compile each nest and a               sample of its legal unrolls to machine code and validate               checksums against the interpreter.  Skipped (and counted as               $(i,native_skipped)) when no OCaml toolchain is on PATH.")
  in
  let recurrent_flag =
    Arg.(
      value & flag
      & info [ "recurrent" ]
          ~doc:"Draw fence-binding recurrence nests (anti-diagonal and               cross-statement) instead of the corpus mix.")
  in
  let dedup_flag =
    Arg.(
      value & flag
      & info [ "dedup" ]
          ~doc:"Skip generated nests whose canonical digest repeats an               earlier draw, so every checked nest is structurally               distinct; skipped draws do not consume the $(b,-n) budget.")
  in
  let run n seed max_depth bound machine domains layers native deep shrink
      recurrent dedup json =
    let layers =
      if native && not (List.mem Fuzz.Native layers) then
        layers @ [ Fuzz.Native ]
      else layers
    in
    let cfg =
      { (Fuzz.default_config ~machine ()) with
        Fuzz.n = max 0 n;
        seed;
        max_depth = (if deep then max max_depth 4 else max_depth);
        bound = (if deep then max bound 8 else bound);
        domains;
        layers;
        deep;
        shrink;
        recurrent;
        dedup }
    in
    let report = Fuzz.run cfg in
    if json then print_endline (Json.to_string (Fuzz.to_json report))
    else Format.printf "%a" Fuzz.pp report;
    if not (Fuzz.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential oracle: fuzz the UGS tables against materialized              unrolls, the cache simulator, and the other selection              strategies; shrink any failure to a minimal reproducer.")
    Term.(const run $ n_arg $ seed_arg $ max_depth_arg $ fuzz_bound_arg
          $ machine_arg $ domains_arg $ layers_arg $ native_flag $ deep_flag
          $ shrink_flag $ recurrent_flag $ dedup_flag $ json_arg)

(* ------------------------------------------------------------------ *)
(* Analysis subcommands: lint / explain / dot take either a kernel name
   or a loop-nest file in the Fortran-style syntax. *)

type target_nest =
  | T_nest of Ujam_ir.Nest.t
  | T_parse_error of string * Ujam_ir.Parse.error

let resolve_target s n =
  if Sys.file_exists s && not (Sys.is_directory s) then
    match
      Ujam_ir.Parse.nest
        ~name:(Filename.remove_extension (Filename.basename s))
        (read_file s)
    with
    | Ok nest -> Some (T_nest nest)
    | Error e -> Some (T_parse_error (s, e))
  else
    match Ujam_kernels.Catalogue.find s with
    | Some e -> Some (T_nest (build e n))
    | None -> (
        match List.assoc_opt s Ujam_kernels.Extras.all with
        | Some b ->
            Some (T_nest (match n with Some n -> b ~n () | None -> b ()))
        | None -> None)

let require_target s n =
  match resolve_target s n with
  | Some (T_nest nest) -> nest
  | Some (T_parse_error (path, e)) ->
      Format.eprintf "%s: %a@." path Ujam_ir.Parse.pp_error e;
      exit 1
  | None ->
      Format.eprintf "ujc: unknown kernel or file %S; see `ujc list'@." s;
      exit 2

let target_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"TARGET"
        ~doc:"Kernel name from Table 2 or a loop-nest file (see `ujc show').")

(* ------------------------------------------------------------------ *)
(* ujc emit: lower a nest (and optionally its engine-chosen unroll) to
   a standalone OCaml program over flat float arrays — the ground-truth
   column.  Emission itself needs no toolchain; --run does, and a
   missing toolchain is a usage error (exit 2), never an exception. *)

let emit_cmd =
  let target_req =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:"Kernel name from Table 2 or a loop-nest file.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the program to $(docv) instead of stdout.")
  in
  let run_flag =
    Arg.(
      value & flag
      & info [ "run" ]
          ~doc:"Compile the emitted program with the host OCaml toolchain,              execute it, and compare every variant's checksums against              the reference interpreter (exit 1 on divergence).")
  in
  let transform_flag =
    Arg.(
      value & flag
      & info [ "transform" ]
          ~doc:"Also emit the engine-chosen unroll-and-jam variant, clamped              to trip-dividing factors.")
  in
  let repeats_arg =
    Arg.(
      value & opt int 3
      & info [ "repeats" ] ~docv:"R"
          ~doc:"Timed repetitions per variant after the semantics run.")
  in
  let emit_seed_arg =
    Arg.(
      value & opt int Ujam_sim.Interp.default_seed
      & info [ "seed" ] ~docv:"S" ~doc:"Initial-store seed.")
  in
  let run target n machine bound no_cache out run_it transform repeats seed =
    let nest = require_target target n in
    let variants =
      { Ujam_native.Emit.vname = "orig"; nest }
      ::
      (if transform then begin
         let r = Driver.optimize ~bound ~cache:(not no_cache) ~machine nest in
         let u = Ujam_ir.Unroll.clamp_divisible nest r.Driver.choice.Search.u in
         [ { Ujam_native.Emit.vname = "u=" ^ Vec.to_string u;
             nest = Ujam_ir.Unroll.unroll_and_jam nest u } ]
       end
       else [])
    in
    let spec =
      { Ujam_native.Emit.uname = Ujam_ir.Nest.name nest;
        seed;
        repeats = max 1 repeats;
        variants }
    in
    let text = Ujam_native.Emit.program [ spec ] in
    (match out with
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Format.eprintf "ujc emit: wrote %s (%d variant%s)@." path
          (List.length variants)
          (if List.length variants = 1 then "" else "s")
    | None -> if not run_it then print_string text);
    if run_it then begin
      match Ujam_native.Toolchain.find () with
      | Error msg ->
          Format.eprintf "ujc emit: --run needs a native toolchain: %s@." msg;
          exit 2
      | Ok tc -> (
          match Ujam_native.Native.run_units tc [ spec ] with
          | Error msg ->
              Format.eprintf "ujc emit: %s@." msg;
              exit 1
          | Ok results ->
              let res = List.hd results in
              List.iter
                (fun (o : Ujam_native.Native.outcome) ->
                  Format.printf "%s: %.3e s/run %s@."
                    o.Ujam_native.Native.vname o.Ujam_native.Native.seconds
                    (String.concat " "
                       (List.map
                          (fun (b, c) -> Printf.sprintf "%s=%.9g" b c)
                          o.Ujam_native.Native.checksums)))
                res.Ujam_native.Native.outcomes;
              let eqs = Ujam_native.Native.equivalences spec res in
              let bad =
                List.exists
                  (fun (e : Ujam_native.Native.equivalence) ->
                    e.Ujam_native.Native.diffs <> [])
                  eqs
              in
              List.iter
                (fun (e : Ujam_native.Native.equivalence) ->
                  Format.printf "equivalence %s: %s (max rel err %.3g)@."
                    e.Ujam_native.Native.vname
                    (if e.Ujam_native.Native.diffs = [] then "ok" else "FAILED")
                    e.Ujam_native.Native.max_rel_err)
                eqs;
              if bad then exit 1)
    end
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:"Lower a nest to a standalone OCaml program over flat float              arrays (optionally with the engine-chosen unroll variant),              and with $(b,--run) compile, execute, and check it against              the reference interpreter.")
    Term.(const run $ target_req $ size_arg $ machine_arg $ bound_arg
          $ cache_arg $ out_arg $ run_flag $ transform_flag $ repeats_arg
          $ emit_seed_arg)

let lint_cmd =
  let open Ujam_analysis in
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Lint every Table-2 kernel.")
  in
  let fuzz_arg =
    Arg.(
      value & opt int 0
      & info [ "fuzz" ] ~docv:"N" ~doc:"Also lint $(docv) generated nests.")
  in
  let seed_arg =
    Arg.(value & opt int 1997 & info [ "seed" ] ~docv:"S" ~doc:"Generator seed.")
  in
  let rules_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "rules" ] ~docv:"IDS"
          ~doc:"Only report these rule ids (e.g. UJ005,UJ008).")
  in
  let run target all fuzz seed n machine bound json rules level =
    (match rules with
    | None -> ()
    | Some ids ->
        List.iter
          (fun id ->
            if not (List.exists (fun (r, _, _) -> r = id) Lint.rules) then begin
              Format.eprintf "ujc lint: unknown rule id %S (known: %s)@." id
                (String.concat ", "
                   (List.map (fun (r, _, _) -> r) Lint.rules));
              exit 2
            end)
          ids);
    let lint_nest nest =
      (Ujam_ir.Nest.name nest, Lint.run ?rules ?level ~bound ~machine nest)
    in
    let targeted =
      match target with
      | None -> []
      | Some s -> (
          match resolve_target s n with
          | Some (T_nest nest) -> [ lint_nest nest ]
          | Some (T_parse_error (path, e)) ->
              [ (path, [ Lint.of_parse_error e ]) ]
          | None ->
              Format.eprintf
                "ujc: unknown kernel or file %S; see `ujc list'@." s;
              exit 2)
    in
    let catalogue =
      if not all then []
      else
        List.map
          (fun e -> lint_nest (build e n))
          Ujam_kernels.Catalogue.all
    in
    let fuzzed =
      if fuzz <= 0 then []
      else
        Ujam_workload.Generator.corpus ~seed ~count:fuzz ()
        |> List.concat_map (fun r -> r.Ujam_workload.Generator.nests)
        |> List.map lint_nest
    in
    let results = targeted @ catalogue @ fuzzed in
    if results = [] then begin
      Format.eprintf "ujc lint: missing TARGET (or pass --all / --fuzz N)@.";
      exit 2
    end;
    let all_ds = List.concat_map snd results in
    let errors, warnings, infos = Diagnostic.count all_ds in
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              [ ("machine", Json.Str machine.Ujam_machine.Machine.name);
                ("bound", Json.Int bound);
                ( "nests",
                  Json.List
                    (List.map
                       (fun (name, ds) ->
                         Json.Obj
                           [ ("nest", Json.Str name);
                             ( "diagnostics",
                               Json.List (List.map Diagnostic.to_json ds) ) ])
                       results) );
                ("errors", Json.Int errors);
                ("warnings", Json.Int warnings);
                ("infos", Json.Int infos);
                ("ok", Json.Bool (errors = 0)) ]))
    else begin
      List.iter
        (fun (_, ds) ->
          List.iter
            (fun d -> Format.printf "@[<v>%a@]@." Diagnostic.pp d)
            ds)
        results;
      Format.printf "lint: %d nest%s, %d error%s, %d warning%s, %d info%s@."
        (List.length results)
        (if List.length results = 1 then "" else "s")
        errors
        (if errors = 1 then "" else "s")
        warnings
        (if warnings = 1 then "" else "s")
        infos
        (if infos = 1 then "" else "s")
    end;
    if errors > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the rule-based static analyzer over a kernel, a loop-nest              file, the whole catalogue ($(b,--all)), or generated nests              ($(b,--fuzz)); exit 1 on any Error-severity diagnostic.")
    Term.(const run $ target_arg $ all_flag $ fuzz_arg $ seed_arg $ size_arg
          $ machine_arg $ bound_arg $ json_arg $ rules_arg $ level_arg)

let explain_cmd =
  let open Ujam_analysis in
  let target_req =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:"Kernel name from Table 2 or a loop-nest file.")
  in
  let run target n machine bound json seq level =
    let nest = require_target target n in
    let e = Explain.run ~bound ?level ~seq ~machine nest in
    if json then print_endline (Json.to_string (Explain.to_json e))
    else Format.printf "%a@." Explain.pp e
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Explain which selection path applies to a nest and why: the              supported-class verdict, legality caps, search-box clamping,              the monotonicity guard, what the cache term changed, and              ($(b,--seq)) the legalizing transformation sequence.")
    Term.(const run $ target_req $ size_arg $ machine_arg $ bound_arg
          $ json_arg $ seq_arg $ level_arg)

let dot_cmd =
  let input_flag =
    Arg.(
      value & flag
      & info [ "no-input" ]
          ~doc:"Exclude input (read-read) dependences, as the UGS model does.")
  in
  let target_req =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:"Kernel name from Table 2 or a loop-nest file.")
  in
  let run target n no_input =
    let nest = require_target target n in
    let g = Ujam_depend.Graph.build ~include_input:(not no_input) nest in
    print_string (Ujam_depend.Graph.to_dot g)
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Emit a nest's dependence graph as Graphviz DOT (kernel name or              loop-nest file).")
    Term.(const run $ target_req $ size_arg $ input_flag)

(* ------------------------------------------------------------------ *)
(* ujc trace: run any subcommand with the observability sink enabled
   and export the recorded spans as Chrome trace_event JSON.  The
   emitted file is read back and validated before we report success,
   so a malformed trace can never be pinned as "written". *)

(* Forward reference to the assembled command group, so trace can
   re-dispatch its operands through the normal command line. *)
let dispatch_ref : (string array -> int) ref = ref (fun _ -> 2)

let validate_trace path =
  let content = read_file path in
  match Json.of_string content with
  | Error e -> Error (Printf.sprintf "not valid JSON: %s" e)
  | Ok json -> (
      match Json.member "traceEvents" json with
      | Some (Json.List events) ->
          let is_str = function Some (Json.Str _) -> true | _ -> false in
          let is_int = function Some (Json.Int _) -> true | _ -> false in
          let well_formed e =
            is_str (Json.member "name" e)
            && Json.member "ph" e = Some (Json.Str "X")
            && is_int (Json.member "ts" e)
            && is_int (Json.member "dur" e)
            && is_int (Json.member "pid" e)
            && is_int (Json.member "tid" e)
          in
          if List.for_all well_formed events then Ok events
          else Error "an event lacks name/ph/ts/dur/pid/tid"
      | Some _ -> Error "traceEvents is not a list"
      | None -> Error "missing traceEvents")

let span_count events name =
  List.length
    (List.filter (fun e -> Json.member "name" e = Some (Json.Str name)) events)

let trace_cmd =
  let out_arg =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Trace output file.")
  in
  let metrics_arg =
    Arg.(
      value & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Also dump the metrics registry (counters, gauges, histogram               summaries) as JSON.")
  in
  let cmd_args =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"CMD"
          ~doc:"Subcommand to trace; a leading $(b,engine) word is accepted               sugar (`ujc trace engine corpus'). Pass the subcommand's own               options after $(b,--).")
  in
  let run out metrics args =
    let args = match args with "engine" :: rest -> rest | rest -> rest in
    if args = [] then begin
      Format.eprintf "ujc trace: missing CMD (try `ujc trace engine corpus')@.";
      exit 2
    end;
    Obs.enable ();
    let code = !dispatch_ref (Array.of_list ("ujc" :: args)) in
    let json = Obs.Span.to_chrome () in
    let oc = open_out out in
    output_string oc (Json.to_string json);
    close_out oc;
    (match metrics with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Json.to_string (Obs.dump ()));
        close_out oc;
        Format.printf "trace: wrote metrics to %s@." path);
    (match validate_trace out with
    | Error e ->
        Format.eprintf "trace: %s is NOT a well-formed Chrome trace: %s@." out e;
        exit 1
    | Ok events ->
        let stages =
          [ "graph"; "tables"; "search"; "sim"; "corpus" ]
          |> List.filter_map (fun n ->
                 let c = span_count events n in
                 if c > 0 then Some (Printf.sprintf "%s=%d" n c) else None)
        in
        Format.printf "trace: wrote %s (%d events; %s)@." out
          (List.length events)
          (String.concat " " stages);
        Format.printf "trace: %s is well-formed Chrome trace JSON@." out);
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a subcommand with span tracing enabled and write a Chrome              trace_event JSON file (open in chrome://tracing or Perfetto).")
    Term.(const run $ out_arg $ metrics_arg $ cmd_args)

(* ------------------------------------------------------------------ *)
(* ujc serve: the persistent optimization service.  The daemon's
   defaults for machine/bound/model/seq come from the same flags the
   one-shot subcommands use; per-request params override them. *)

let serve_cmd =
  let open Ujam_serve in
  let socket_arg =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen for clients on a Unix-domain socket bound at $(docv)               (unlinked again on shutdown).")
  in
  let stdio_flag =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:"Read request lines from stdin and answer on stdout               (the default when $(b,--socket) is absent).")
  in
  let smoke_arg =
    Arg.(
      value & opt (some int) None
      & info [ "smoke" ] ~docv:"N"
          ~doc:"Self-drive: start a daemon on a fresh temp socket, replay a               deterministic mixed workload of $(docv) requests over two               interleaved clients (repeats, malformed, unsupported,               oversized and timeout probes included), and report health.")
  in
  let serve_bound_arg =
    Arg.(
      value & opt int 4
      & info [ "b"; "bound" ] ~docv:"B" ~doc:"Default unroll-space bound per loop.")
  in
  let max_loops_arg =
    Arg.(
      value & opt int 2
      & info [ "max-loops" ] ~docv:"L"
          ~doc:"Default cap on simultaneously unrolled loops.")
  in
  let cache_size_arg =
    Arg.(
      value & opt int 1024
      & info [ "cache-size" ] ~docv:"N"
          ~doc:"Result-cache capacity in entries (LRU beyond that).")
  in
  let batch_arg =
    Arg.(
      value & opt int 32
      & info [ "batch" ] ~docv:"N"
          ~doc:"Max cache-miss requests dispatched to the domain pool per               round.")
  in
  let cache_file_arg =
    Arg.(
      value & opt (some string) None
      & info [ "cache-file" ] ~docv:"FILE"
          ~doc:"Persist the result cache to $(docv) on shutdown and reload               it at startup, so warm-cache performance survives restarts.               A missing file starts cold.")
  in
  let timeout_arg =
    Arg.(
      value & opt int 30_000
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Default per-request deadline from arrival to dispatch;               negative disables.")
  in
  let max_bytes_arg =
    Arg.(
      value & opt int (1 lsl 20)
      & info [ "max-request-bytes" ] ~docv:"N"
          ~doc:"Longest accepted request line; longer lines get a typed               oversized error.")
  in
  let metrics_out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Dump the final metrics registry as JSON on shutdown.")
  in
  let trace_out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Retain per-request spans and write a Chrome trace on               shutdown (off by default so daemon memory stays bounded).")
  in
  let quiet_flag =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Suppress the stderr lifecycle summary.")
  in
  let run machine bound max_loops no_cache model seq domains socket stdio smoke
      cache_size cache_file batch timeout_ms max_request_bytes metrics_out
      trace_out quiet =
    let model = effective_model no_cache model in
    match smoke with
    | Some n ->
        let r = Serve.smoke ~requests:(max 1 n) ~domains () in
        Format.printf "%a@." Serve.pp_smoke r;
        if Serve.smoke_healthy r then Format.printf "serve smoke: ok@."
        else begin
          Format.printf "serve smoke: FAILED@.";
          exit 1
        end
    | None ->
        if socket = None && not stdio then begin
          Format.eprintf
            "ujc serve: no transport; pass --socket PATH and/or --stdio (or --smoke N)@.";
          exit 2
        end;
        let cfg =
          { Serve.machine; bound; max_loops; model; seq; domains; cache_size;
            cache_file; batch; timeout_ms; max_request_bytes; metrics_out;
            trace_out; quiet }
        in
        let (_ : Serve.summary) = Serve.run ?listen:socket ~stdio cfg in
        ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent optimization service: line-delimited JSON              requests (optimize, explain, lint, metrics, ping, shutdown)              over a Unix socket and/or stdio, answered from a              content-addressed result cache and a Domain worker pool.")
    Term.(const run $ machine_arg $ serve_bound_arg $ max_loops_arg $ cache_arg
          $ model_arg $ seq_arg $ domains_arg $ socket_arg $ stdio_flag
          $ smoke_arg $ cache_size_arg $ cache_file_arg $ batch_arg
          $ timeout_arg $ max_bytes_arg $ metrics_out_arg $ trace_out_arg
          $ quiet_flag)

let () =
  let doc = "unroll-and-jam using uniformly generated sets" in
  let info = Cmd.info "ujc" ~version:"1.0.0" ~doc in
  (* cmdliner reserves single-dash spellings for one-letter names; accept
     the documented "--n" as sugar for "-n". *)
  let remap argv = Array.map (fun a -> if a = "--n" then "-n" else a) argv in
  let group =
    Cmd.group info
      [ list_cmd; show_cmd; analyze_cmd; tables_cmd; optimize_cmd; simulate_cmd;
        compile_cmd; fortran_cmd; verify_cmd; graph_cmd; corpus_cmd; fuzz_cmd;
        emit_cmd; lint_cmd; explain_cmd; dot_cmd; trace_cmd; serve_cmd ]
  in
  (* An unknown first word used to fall through to cmdliner's generic
     usage error (exit 124) without naming the commands.  Catch it up
     front: reject argv(1) only when it is not an option and not a
     prefix of any known command name (cmdliner accepts unambiguous
     prefixes, so `ujc optim' must keep working). *)
  let known =
    [ "list"; "show"; "analyze"; "tables"; "optimize"; "simulate"; "compile";
      "fortran"; "verify"; "graph"; "corpus"; "fuzz"; "emit"; "lint";
      "explain"; "dot"; "trace"; "serve" ]
  in
  (if Array.length Sys.argv > 1 then
     let cmd = Sys.argv.(1) in
     let is_prefix_of name =
       String.length cmd <= String.length name
       && String.equal (String.sub name 0 (String.length cmd)) cmd
     in
     if
       String.length cmd > 0
       && cmd.[0] <> '-'
       && not (List.exists is_prefix_of known)
     then begin
       Format.eprintf "ujc: unknown subcommand %S@." cmd;
       Format.eprintf "known subcommands: %s@."
         (String.concat ", " (List.sort String.compare known));
       exit 2
     end);
  dispatch_ref := (fun argv -> Cmd.eval ~argv:(remap argv) group);
  exit (Cmd.eval ~argv:(remap Sys.argv) group)
