(* Differential oracle: check the UGS tables against materialized
   unrolls, the cache simulator, and the other selection strategies —
   then inject a deliberate table bug and watch it get caught and
   shrunk to a minimal reproducer.

   Run with: dune exec examples/differential_oracle.exe *)

open Ujam_oracle

let machine = Ujam_machine.Presets.alpha

let () =
  (* Layer 1 — recount: materialize every unroll vector of a kernel
     with the real transformation and recount memory ops, registers and
     flops on the unrolled body.  The tables must agree exactly. *)
  let nest = Ujam_kernels.Kernels.mmjki ~n:12 () in
  let mismatches = Recount.check ~machine nest in
  Format.printf "=== recount (%s) ===@.%d mismatches@.@." (Ujam_ir.Nest.name nest)
    (List.length mismatches);

  (* Layer 2 — sim replay: unroll candidates the tables rank apart and
     replay them through the cache model; predicted order and simulated
     miss counts must not invert. *)
  let o = Simcheck.check ~machine (Ujam_kernels.Kernels.dmxpy0 ~n:24 ()) in
  Format.printf "=== sim replay (dmxpy.0) ===@.%d candidates simulated, %d inversions@.@."
    o.Simcheck.simulated
    (List.length o.Simcheck.mismatches);

  (* Layer 3 — cross-model: every registered strategy's choice, scored
     by materialized recount, against the exhaustive reference. *)
  let divergences = Crossmodel.check ~machine nest in
  Format.printf "=== cross-model (%s) ===@." (Ujam_ir.Nest.name nest);
  if divergences = [] then Format.printf "all models agree@.@."
  else
    List.iter
      (fun m ->
        Format.printf "%a%s@.@." Mismatch.pp m
          (if Mismatch.is_explained m then "  (explained)" else ""))
      divergences;

  (* Fault injection: pretend V_M over-counts by one on every
     non-trivial unroll vector.  The fuzz loop catches it on generated
     nests and shrinks the first failure to a reproducer small enough
     to read — and to paste back into a test. *)
  let perturb u (c : Counts.t) =
    if Ujam_linalg.Vec.is_zero u then c
    else { c with Counts.memory_ops = c.Counts.memory_ops + 1 }
  in
  let cfg =
    { (Fuzz.default_config ~machine ()) with
      Fuzz.n = 10;
      seed = 42;
      layers = [ Fuzz.Recount ];
      shrink = true }
  in
  let report = Fuzz.run ~perturb cfg in
  Format.printf "=== injected bug ===@.caught %d unexplained mismatch(es)@.@."
    report.Fuzz.unexplained;
  match report.Fuzz.failures with
  | { Fuzz.reduced = Some small; _ } :: _ ->
      Format.printf "reduced reproducer:@.%a@.@.rebuild with:@.%s@."
        Ujam_ir.Nest.pp small (Shrink.to_snippet small)
  | _ -> Format.printf "no reproducer (unexpected)@."
