(* Every selection strategy on every evaluation machine, chosen by
   registry name — no strategy-specific call paths.

     dune exec examples/strategy_matrix.exe

   Each (kernel, machine) pair gets one shared analysis context, so the
   four strategies see identical precomputed inputs (safety vector,
   locality ranking, unroll space) and differ only in how they cost the
   candidates. *)

open Ujam_linalg
open Ujam_core
open Ujam_engine

let kernels = [ "dmxpy0"; "mmjki"; "mmjik"; "sor"; "jacobi"; "afold" ]
let machines = [ Ujam_machine.Presets.alpha; Ujam_machine.Presets.hppa ]

let () =
  List.iter
    (fun (machine : Ujam_machine.Machine.t) ->
      Format.printf "@.=== %s ===@." machine.Ujam_machine.Machine.name;
      Format.printf "%-10s" "loop";
      List.iter (fun m -> Format.printf " %-12s" (Model.name m)) Model.all;
      Format.printf "@.";
      List.iter
        (fun name ->
          let e = Option.get (Ujam_kernels.Catalogue.find name) in
          let nest = e.Ujam_kernels.Catalogue.build ~n:24 () in
          let ctx = Analysis_ctx.create ~bound:4 ~machine nest in
          Format.printf "%-10s" name;
          List.iter
            (fun m ->
              let module M = (val m : Model.MODEL) in
              let c = M.analyze ctx in
              Format.printf " %-12s"
                (Printf.sprintf "%s b=%.2f" (Vec.to_string c.Search.u)
                   c.Search.balance))
            Model.all;
          Format.printf "@.")
        kernels)
    machines;
  (* The same registry drives batch runs: a corpus with an unsupported
     routine injected still completes, the bad routine becoming a typed
     per-routine error record. *)
  let bad =
    let d = 2 in
    let open Ujam_ir.Build in
    let j = var d 0 and i = var d 1 in
    { Ujam_workload.Generator.name = "strided-outlier";
      nests =
        [ nest "strided"
            [ loop d "J" ~level:0 ~lo:1 ~hi:16 ~step:2 ();
              loop d "I" ~level:1 ~lo:1 ~hi:16 () ]
            [ aref "A" [ i; j ] <<- rd "A" [ i; j ] +: rd "B" [ i ] ] ] }
  in
  let routines = Ujam_workload.Generator.corpus ~count:6 () @ [ bad ] in
  let report =
    Engine.run_corpus ~domains:2 ~bound:3
      ~machine:Ujam_machine.Presets.alpha routines
  in
  Format.printf "@.=== engine corpus (typed error degradation) ===@.%a@."
    Engine.pp report
